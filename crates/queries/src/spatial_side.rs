//! Direct evaluation of the query library on the raw spatial data
//! (strategy (i)).
//!
//! First-order queries are evaluated as `FO(P, <x, <y)` sentences through the
//! sample-point evaluator of `topo-spatial`; the recursive queries
//! (connectivity, parity, holes) are computed on the *unreduced* arrangement
//! of the instance — i.e. on a structure whose size is that of the raw data,
//! never on the compact invariant. This keeps the strategy comparison of the
//! experiments honest: the direct route pays for the full data size on every
//! query, which is exactly the cost the paper's invariant-based strategies
//! avoid.

use crate::invariant_side::evaluate_on_invariant;
use crate::library::TopologicalQuery;
use topo_spatial::{DirectEvaluator, PointFormula, SpatialInstance};

/// The `FO(P, <x, <y)` sentence expressing a first-order query of the
/// library, when the query is first-order expressible in the point language
/// without interior quantification.
pub fn point_formula(query: &TopologicalQuery) -> Option<PointFormula> {
    let in_region = |region, var| PointFormula::InRegion { region, var };
    match *query {
        TopologicalQuery::Intersects(a, b) => Some(PointFormula::Exists(
            0,
            Box::new(PointFormula::And(vec![in_region(a, 0), in_region(b, 0)])),
        )),
        TopologicalQuery::Disjoint(a, b) => {
            Some(PointFormula::Not(Box::new(PointFormula::Exists(
                0,
                Box::new(PointFormula::And(vec![in_region(a, 0), in_region(b, 0)])),
            ))))
        }
        TopologicalQuery::Contains(a, b) => {
            Some(PointFormula::Forall(0, Box::new(in_region(b, 0).implies(in_region(a, 0)))))
        }
        TopologicalQuery::Equal(a, b) => Some(PointFormula::And(vec![
            PointFormula::Forall(0, Box::new(in_region(b, 0).implies(in_region(a, 0)))),
            PointFormula::Forall(0, Box::new(in_region(a, 0).implies(in_region(b, 0)))),
        ])),
        _ => None,
    }
}

/// Evaluates a query of the library directly on the spatial instance.
pub fn evaluate_direct(query: &TopologicalQuery, instance: &SpatialInstance) -> bool {
    if let Some(formula) = point_formula(query) {
        return DirectEvaluator::new(instance).evaluate(&formula);
    }
    // Recursive and interior-sensitive queries: computed on the unreduced
    // arrangement-level decomposition (raw-data-sized).
    let unreduced = topo_invariant::top_unreduced(instance);
    evaluate_on_invariant(query, &unreduced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use topo_spatial::{Region, SpatialInstance};

    fn instance() -> SpatialInstance {
        SpatialInstance::from_regions([
            ("P", Region::rectangle(0, 0, 100, 100)),
            ("Q", Region::rectangle(20, 20, 80, 80)),
            ("R", Region::rectangle(100, 0, 200, 100)),
        ])
    }

    #[test]
    fn fo_queries_direct() {
        let instance = instance();
        assert!(evaluate_direct(&TopologicalQuery::Intersects(0, 1), &instance));
        assert!(evaluate_direct(&TopologicalQuery::Contains(0, 1), &instance));
        assert!(!evaluate_direct(&TopologicalQuery::Contains(1, 0), &instance));
        assert!(evaluate_direct(&TopologicalQuery::Disjoint(1, 2), &instance));
        assert!(!evaluate_direct(&TopologicalQuery::Equal(0, 1), &instance));
        assert!(evaluate_direct(&TopologicalQuery::Equal(2, 2), &instance));
    }

    #[test]
    fn recursive_queries_direct() {
        let instance = instance();
        assert!(evaluate_direct(&TopologicalQuery::IsConnected(0), &instance));
        assert!(evaluate_direct(&TopologicalQuery::BoundaryOnlyIntersection(0, 2), &instance));
        assert!(!evaluate_direct(&TopologicalQuery::BoundaryOnlyIntersection(0, 1), &instance));
        assert!(evaluate_direct(&TopologicalQuery::InteriorsOverlap(0, 1), &instance));
    }

    #[test]
    fn direct_agrees_with_invariant_side() {
        // The core claim of the paper: topological queries can be answered on
        // the invariant. Check agreement over the whole library.
        let instance = instance();
        let invariant = topo_invariant::top(&instance);
        let queries = [
            TopologicalQuery::Intersects(0, 1),
            TopologicalQuery::Intersects(1, 2),
            TopologicalQuery::Disjoint(1, 2),
            TopologicalQuery::Contains(0, 1),
            TopologicalQuery::Contains(0, 2),
            TopologicalQuery::Equal(0, 0),
            TopologicalQuery::Equal(0, 2),
            TopologicalQuery::BoundaryOnlyIntersection(0, 2),
            TopologicalQuery::BoundaryOnlyIntersection(0, 1),
            TopologicalQuery::InteriorsOverlap(0, 1),
            TopologicalQuery::InteriorsOverlap(0, 2),
            TopologicalQuery::IsConnected(0),
            TopologicalQuery::ComponentCountEven(1),
            TopologicalQuery::HasHole(0),
        ];
        for query in queries {
            assert_eq!(
                evaluate_direct(&query, &instance),
                evaluate_on_invariant(&query, &invariant),
                "disagreement on {query:?}"
            );
        }
    }
}
