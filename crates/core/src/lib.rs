//! # topo-core — querying spatial databases via topological invariants
//!
//! Facade crate re-exporting the full pipeline of the Segoufin–Vianu system:
//!
//! * build spatial instances over a schema of region names
//!   ([`SpatialInstance`], [`Region`], [`Schema`]),
//! * compute the topological invariant `top(I)` ([`top`],
//!   [`TopologicalInvariant`]) and decide topological equivalence by
//!   canonical codes (Theorem 2.1),
//! * invert an invariant back to a linear instance ([`invert()`],
//!   Theorem 2.2),
//! * ask topological queries either directly on the spatial data or on the
//!   invariant ([`TopologicalQuery`], [`evaluate_direct`],
//!   [`evaluate_on_invariant`]), including through real fixpoint /
//!   fixpoint+counting programs run by the relational engine,
//! * translate topological first-order spatial queries into invariant-side
//!   queries (crate `topo-translate`, re-exported as [`translate`]),
//! * serve many instances and many queries concurrently through the
//!   deduplicating, memoising [`InvariantStore`] (crate `topo-store`,
//!   re-exported as [`store`]).
//!
//! ## Quick start
//!
//! ```
//! use topo_core::{Region, SpatialInstance, TopologicalQuery};
//!
//! // Two nested administrative regions.
//! let instance = SpatialInstance::from_regions([
//!     ("park", Region::rectangle(0, 0, 100, 100)),
//!     ("lake", Region::rectangle(30, 30, 70, 70)),
//! ]);
//!
//! // The topological invariant is a small relational annotation of the data.
//! let invariant = topo_core::top(&instance);
//! assert_eq!(invariant.cell_count(), 5);
//!
//! // Topological queries answered on the invariant agree with direct
//! // evaluation on the raw geometry.
//! let query = TopologicalQuery::Contains(0, 1);
//! assert!(topo_core::evaluate_on_invariant(&query, &invariant));
//! assert!(topo_core::evaluate_direct(&query, &instance));
//! ```

pub use topo_arrangement as arrangement;
pub use topo_datagen as datagen;
pub use topo_geometry as geometry;
pub use topo_invariant as invariant;
pub use topo_parallel as parallel;
pub use topo_queries as queries;
pub use topo_relational as relational;
pub use topo_spatial as spatial;
pub use topo_store as store;
pub use topo_translate as translate;

pub use topo_geometry::{Point, Rational};
#[cfg(feature = "naive-reference")]
pub use topo_invariant::{canonical_code_naive, top_naive};
pub use topo_invariant::{
    invert, invert_verified, sweep_stats, top, top_unreduced, CanonicalCode, CanonicalForm,
    CodeHash, InvariantStats, MaintainStats, MaintainedInvariant, SweepStats, TopologicalInvariant,
};
pub use topo_queries::{
    component_count, datalog_program, euler_characteristic, evaluate_direct,
    evaluate_goal_directed, evaluate_on_classes, evaluate_on_invariant, isomorphism_classes,
    linear_connectivity_program, point_formula, program_structure, quadratic_connectivity_program,
    TopologicalQuery,
};
pub use topo_relational::{Formula, Goal, Program, Semantics, Structure};
pub use topo_spatial::{PointFormula, RealFormula, Region, RegionId, Schema, SpatialInstance};
pub use topo_store::{
    ClassId, Fault, FaultKind, FaultPlan, FaultSite, FaultyBackend, FileBackend, IngestOutcome,
    InstanceId, InvariantStore, MemoryBackend, PersistError, StorageBackend, StoreConfig,
    StoreConfigError, StoreStats,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_pipeline() {
        let instance = SpatialInstance::from_regions([
            ("a", Region::rectangle(0, 0, 50, 50)),
            ("b", Region::rectangle(10, 10, 40, 40)),
        ]);
        let invariant = top(&instance);
        assert!(evaluate_on_invariant(&TopologicalQuery::Contains(0, 1), &invariant));
        let stats = InvariantStats::compute(&invariant);
        assert!(stats.cells < instance.point_count() * 3);
        let rebuilt = invert_verified(&invariant).unwrap();
        assert!(top(&rebuilt).is_isomorphic_to(&invariant));
    }
}
