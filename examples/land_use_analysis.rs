//! Land-use analysis on a Sequoia-2000-style land-cover map: build the
//! invariant once, then answer a batch of adjacency / containment questions
//! on it — the workload that motivates querying the invariant instead of the
//! raw data.
//!
//! Scenario: a seeded 256-patch land-cover subdivision with nine thematic
//! classes (agriculture, forest, lake, …). Building the invariant once
//! (roughly 940 cells, ~2x smaller than the raw 20 480 bytes) answers a
//! whole batch of questions without touching the geometry again.
//!
//! Run with `cargo run --release --example land_use_analysis`. Expected
//! output (deterministic apart from the build time): the invariant
//! statistics line, an adjacency table listing which classes share a
//! boundary (in this dense map, every class touches every other), a
//! connectivity report (every class fragmented into 15–23 components),
//! and a hole report per class.

use topo_core::{InvariantStats, TopologicalQuery};
use topo_datagen::{sequoia_landcover, Scale};

fn main() {
    let instance = sequoia_landcover(Scale::medium(), 2024);
    println!(
        "land-cover map: {} patches, {} raw points ({} bytes at 20 bytes/point)",
        instance.polygon_count(),
        instance.point_count(),
        instance.raw_bytes(20)
    );

    let start = std::time::Instant::now();
    let invariant = topo_core::top(&instance);
    let stats = InvariantStats::compute(&invariant);
    println!(
        "invariant built in {:?}: {} cells, {} bytes ({}x smaller), avg {:.1} lines per junction (max {})",
        start.elapsed(),
        stats.cells,
        stats.bytes,
        instance.raw_bytes(20) / stats.bytes.max(1),
        stats.average_degree,
        stats.max_degree
    );

    // Which land-use classes touch which? A full adjacency matrix needs only
    // the invariant.
    let schema = instance.schema().clone();
    println!("\nadjacency (classes that share at least a boundary):");
    for a in schema.ids() {
        let mut touching = Vec::new();
        for b in schema.ids() {
            if a != b
                && topo_core::evaluate_on_invariant(&TopologicalQuery::Intersects(a, b), &invariant)
            {
                touching.push(schema.name(b));
            }
        }
        println!("  {:<12} touches {:?}", schema.name(a), touching);
    }

    // Connectivity report: which classes form a single connected territory?
    println!("\nconnectivity:");
    for a in schema.ids() {
        let components = topo_core::component_count(&invariant, a);
        let connected = components <= 1;
        println!(
            "  {:<12} {} ({} component{})",
            schema.name(a),
            if connected { "is connected" } else { "is fragmented" },
            components,
            if components == 1 { "" } else { "s" }
        );
    }
}
