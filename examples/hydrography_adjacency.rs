//! Hydrography: lakes, islands, rivers and estuaries. Demonstrates the full
//! Theorem 2.2 round trip — the invariant is inverted back into a small
//! linear instance that can stand in for the original data — and the query
//! translation pipeline of Theorem 4.1.
//!
//! Scenario: a seeded hydrography layer (232 features, 1416 raw points —
//! lakes containing islands, disjoint rivers and estuaries). The invariant
//! (507 cells) is inverted into an equivalent linear instance of only 844
//! points, and a translated FO query agrees on both sides.
//!
//! Run with `cargo run --release --example hydrography_adjacency`.
//! Expected output (exact numbers are deterministic — the workload is
//! seeded):
//!
//! ```text
//! hydrography layer: 232 features, 1416 raw points
//! invariant: 507 cells
//! rebuilt linear instance: 844 points (vs 1416 in the original) — topologically equivalent: true
//!   lakes intersects rivers                                 -> false
//!   lakes contains islands                                  -> true
//!   the interiors of lakes and islands overlap              -> true
//!   lakes has an even number of connected components        -> true
//!   number of lakes (components): 108
//! translated query 'a lake meets a river': on invariant = false, on raw data = false
//! ```

use topo_core::{PointFormula, TopologicalQuery};
use topo_datagen::{sequoia_hydro, Scale};
use topo_translate::TranslatedQuery;

fn main() {
    let instance = sequoia_hydro(Scale::medium(), 7);
    let schema = instance.schema().clone();
    println!(
        "hydrography layer: {} features, {} raw points",
        instance.polygon_count(),
        instance.point_count()
    );

    let invariant = topo_core::top(&instance);
    println!("invariant: {} cells", invariant.cell_count());

    // Theorem 2.2: rebuild a linear instance with the same topology and keep
    // it as the compact annotation (evaluation strategy (iv) of the paper).
    let rebuilt = topo_core::invert_verified(&invariant).expect("hydrography is invertible");
    println!(
        "rebuilt linear instance: {} points (vs {} in the original) — topologically equivalent: {}",
        rebuilt.point_count(),
        instance.point_count(),
        topo_core::top(&rebuilt).is_isomorphic_to(&invariant)
    );

    // Queries on the invariant.
    let lakes = schema.id("lakes").unwrap();
    let islands = schema.id("islands").unwrap();
    let rivers = schema.id("rivers").unwrap();
    for query in [
        TopologicalQuery::Intersects(lakes, rivers),
        TopologicalQuery::Contains(lakes, islands),
        TopologicalQuery::InteriorsOverlap(lakes, islands),
        TopologicalQuery::ComponentCountEven(lakes),
    ] {
        println!(
            "  {:<55} -> {}",
            query.describe(&schema),
            topo_core::evaluate_on_invariant(&query, &invariant)
        );
    }
    println!("  number of lakes (components): {}", topo_core::component_count(&invariant, lakes));

    // Theorem 4.1: a topological FO sentence translated to run against the
    // invariant (via inversion) gives the same answer as evaluating it on the
    // original data.
    let sentence = PointFormula::Exists(
        0,
        Box::new(PointFormula::And(vec![
            PointFormula::InRegion { region: lakes, var: 0 },
            PointFormula::InRegion { region: rivers, var: 0 },
        ])),
    );
    let translated = TranslatedQuery::new(sentence);
    let on_invariant = translated.evaluate(&invariant).expect("invertible workload");
    let on_data = translated.evaluate_on_instance(&instance);
    println!(
        "translated query 'a lake meets a river': on invariant = {on_invariant}, on raw data = {on_data}"
    );
    assert_eq!(on_invariant, on_data);
}
