//! Quickstart: build a tiny spatial database, compute its topological
//! invariant, and answer topological queries on either side.
//!
//! Scenario: a city map with three regions — a park, a lake nested inside
//! it, and a disjoint industrial zone. The invariant is a tiny relational
//! structure (2 vertices, 4 edges, 4 faces — 36 bytes), yet it answers all
//! the topological questions the raw geometry can, and it is unchanged by
//! stretching and translating the map.
//!
//! Run with `cargo run --example quickstart`. Expected output:
//!
//! ```text
//! spatial database: 3 regions, 12 raw points
//! topological invariant: 2 vertices, 4 edges, 4 faces (36 bytes)
//!   park contains lake                                      -> true
//!   park and industry intersect only on their boundaries    -> true
//!   the interiors of park and industry overlap              -> false
//!   lake is disjoint from industry                          -> true
//!   park has a hole                                         -> false
//! a stretched + translated copy is topologically equivalent: true
//! ```

use topo_core::{Region, SpatialInstance, TopologicalQuery};

fn main() {
    // A miniature geographic database: a park containing a lake, and a
    // neighbouring industrial zone that only touches the park's boundary.
    let instance = SpatialInstance::from_regions([
        ("park", Region::rectangle(0, 0, 100, 100)),
        ("lake", Region::rectangle(30, 30, 70, 70)),
        ("industry", Region::rectangle(100, 0, 180, 100)),
    ]);
    println!(
        "spatial database: {} regions, {} raw points",
        instance.schema().len(),
        instance.point_count()
    );

    // The topological invariant summarises the topology in a handful of cells.
    let invariant = topo_core::top(&instance);
    let stats = topo_core::InvariantStats::compute(&invariant);
    println!(
        "topological invariant: {} vertices, {} edges, {} faces ({} bytes)",
        stats.vertices, stats.edges, stats.faces, stats.bytes
    );

    // Topological queries can be answered on the invariant alone, and agree
    // with direct evaluation on the raw geometry.
    let queries = [
        TopologicalQuery::Contains(0, 1),
        TopologicalQuery::BoundaryOnlyIntersection(0, 2),
        TopologicalQuery::InteriorsOverlap(0, 2),
        TopologicalQuery::Disjoint(1, 2),
        TopologicalQuery::HasHole(0),
    ];
    for query in queries {
        let on_invariant = topo_core::evaluate_on_invariant(&query, &invariant);
        let direct = topo_core::evaluate_direct(&query, &instance);
        assert_eq!(on_invariant, direct);
        println!("  {:<55} -> {}", query.describe(instance.schema()), on_invariant);
    }

    // Topological equivalence is decided by comparing canonical codes
    // (Theorem 2.1): a stretched and translated copy of the map has the same
    // invariant.
    let stretched =
        topo_core::spatial::transform::AffineMap::scaling(topo_core::Rational::new(7, 2))
            .compose(&topo_core::spatial::transform::AffineMap::translation(1000, -500))
            .apply_instance(&instance);
    assert!(topo_core::top(&stretched).is_isomorphic_to(&invariant));
    println!("a stretched + translated copy is topologically equivalent: true");
}
