//! Head-to-head comparison of the paper's evaluation strategies on one
//! workload: (i) direct evaluation on the raw data, (ii) fixpoint programs on
//! the invariant, (iii) native algorithms on the invariant, (iv) direct
//! evaluation on the rebuilt linear instance.
//!
//! Scenario: a seeded 196-point hydrography workload and four library
//! queries (intersection, containment, connectivity, holes), each answered
//! four ways.
//!
//! Run with `cargo run --release --example invariant_vs_direct`. Expected
//! output: a table with one row per query and one column per strategy in
//! which every strategy returns the same boolean, and the invariant-side
//! columns (ii)/(iii) are orders of magnitude faster than direct
//! evaluation (i) — microseconds against tens of milliseconds.

use std::time::Instant;
use topo_core::{Semantics, TopologicalQuery};
use topo_datagen::{sequoia_hydro, Scale};

fn main() {
    let instance = sequoia_hydro(Scale { grid: 6 }, 99);
    let schema = instance.schema().clone();
    println!("workload: {} raw points", instance.point_count());

    let start = Instant::now();
    let invariant = topo_core::top(&instance);
    println!("invariant construction: {:?} ({} cells)", start.elapsed(), invariant.cell_count());
    let structure = topo_core::program_structure(&invariant);
    let rebuilt = topo_core::invert(&invariant).ok();

    let queries = [
        TopologicalQuery::Intersects(0, 2),
        TopologicalQuery::Contains(0, 1),
        TopologicalQuery::IsConnected(0),
        TopologicalQuery::HasHole(0),
    ];
    println!(
        "\n{:<45} {:>14} {:>14} {:>14} {:>14}",
        "query", "(i) direct", "(ii) datalog", "(iii) invariant", "(iv) rebuilt"
    );
    for query in queries {
        let t0 = Instant::now();
        let direct = topo_core::evaluate_direct(&query, &instance);
        let t_direct = t0.elapsed();

        let datalog = topo_core::datalog_program(&query, &schema).map(|program| {
            let t = Instant::now();
            let answer = program.run_goal_boolean(&structure, Semantics::Stratified);
            (answer, t.elapsed())
        });

        let t1 = Instant::now();
        let on_invariant = topo_core::evaluate_on_invariant(&query, &invariant);
        let t_invariant = t1.elapsed();

        let rebuilt_eval = rebuilt.as_ref().map(|r| {
            let t = Instant::now();
            (topo_core::evaluate_direct(&query, r), t.elapsed())
        });

        assert_eq!(direct, on_invariant);
        if let Some((answer, _)) = datalog {
            assert_eq!(direct, answer);
        }
        println!(
            "{:<45} {:>8} {:>5.1?} {:>14} {:>8} {:>5.1?} {:>14}",
            query.describe(&schema),
            direct,
            t_direct,
            datalog.map(|(a, t)| format!("{a} {t:.1?}")).unwrap_or_else(|| "-".into()),
            on_invariant,
            t_invariant,
            rebuilt_eval.map(|(a, t)| format!("{a} {t:.1?}")).unwrap_or_else(|| "-".into()),
        );
    }
    println!("\nAll strategies agree; the invariant-side evaluations touch a structure that is");
    println!("orders of magnitude smaller than the raw data, which is the paper's point.");
}
