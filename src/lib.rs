//! Workspace root: hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`). The public API lives in
//! [`topo_core`], re-exported here for convenience.

pub use topo_core as api;
