//! Offline stand-in for the published [`rand`](https://docs.rs/rand/0.8)
//! crate, providing exactly the API subset this workspace uses:
//!
//! * [`rngs::SmallRng`] seeded via [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen_range`] over half-open and inclusive integer ranges,
//! * [`Rng::gen_bool`].
//!
//! The generator is SplitMix64: deterministic, fast, and of more than
//! sufficient quality for the workspace's test-data generation. It makes no
//! attempt to be bit-compatible with the published crate's `SmallRng`; only
//! the API shape matches, so swapping the real dependency back in (when a
//! crates.io registry is reachable) is a manifest-only change.

use std::ops::{Range, RangeInclusive};

/// A random number generator core: the single primitive all derived methods
/// are built from.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;
}

/// A seedable generator, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Identical seeds yield
    /// identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling from a range, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// User-facing random-value methods, mirroring `rand::Rng`. Blanket-implemented
/// for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 random bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, one
            // 64-bit word of state.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-30i64..=30);
            assert!((-30..=30).contains(&v));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
