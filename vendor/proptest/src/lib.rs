//! Offline stand-in for the published
//! [`proptest`](https://docs.rs/proptest/1) property-testing crate, providing
//! the API subset this workspace uses:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`], implemented for
//!   integer ranges and tuples of strategies,
//! * [`collection::vec`] for variable-length vectors,
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   attribute, plus [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`], and [`prop_assume!`].
//!
//! Unlike the real crate this shim does **no shrinking** and derives its
//! random stream deterministically from the test name, so failures reproduce
//! exactly across runs. Swapping the real dependency back in (when a
//! crates.io registry is reachable) is a manifest-only change.

use std::ops::Range;

pub mod test_runner {
    //! Test-case configuration and the deterministic RNG driving generation.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }

    /// Deterministic SplitMix64 stream seeded from the test name, so every
    /// run of a property test generates the same cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from an arbitrary label (typically the test name).
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label gives a stable, well-spread seed.
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for byte in label.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: hash }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

use test_runner::TestRng;

/// Something that can generate values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes every generated value with `map`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, map }
    }
}

/// Strategy adaptor produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let offset = u128::from(rng.next_u64()) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, usize);

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `size` and elements drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "cannot sample empty length range");
        VecStrategy { element, size }
    }

    /// Strategy produced by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The customary glob import, mirroring `proptest::prelude`.

    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy};
}

/// Defines property tests: `fn name(arg in strategy, ..) { body }` items are
/// expanded into `#[test]` functions running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = <$crate::test_runner::Config as ::core::default::Default>::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome = (|| -> ::core::result::Result<(), ::std::string::String> {
                    $body;
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(message) = outcome {
                    panic!("property failed on case {case}: {message}");
                }
            }
        }
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
}

/// Asserts a condition inside a property body. Returns `Err` (rather than
/// panicking) so the harness can report which generated case failed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property body, reporting both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `(left == right)`\n  left: `{left:?}`,\n right: `{right:?}`"
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `(left == right)`\n  left: `{left:?}`,\n right: `{right:?}`: {}",
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Asserts inequality inside a property body, reporting the value on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left != right) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `(left != right)`\n  both: `{left:?}`"
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left != right) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `(left != right)`\n  both: `{left:?}`: {}",
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Skips the current generated case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let strategy = (0i64..100, 0i64..100).prop_map(|(a, b)| a + b);
        let mut r1 = crate::test_runner::TestRng::deterministic("x");
        let mut r2 = crate::test_runner::TestRng::deterministic("x");
        for _ in 0..50 {
            assert_eq!(strategy.generate(&mut r1), strategy.generate(&mut r2));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Vectors respect the requested length range.
        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(0i32..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn assume_skips_cases(a in -10i64..10) {
            prop_assume!(a >= 0);
            prop_assert!(a >= 0, "assume should have filtered {}", a);
        }
    }
}
