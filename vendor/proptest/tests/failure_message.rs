use proptest::prelude::*;

proptest! {
    #[test]
    #[should_panic(expected = "property failed on case")]
    fn failing_property_reports_case(a in 5i64..100) {
        prop_assert!(a < 5, "generated {} is not below 5", a);
    }

    #[test]
    #[should_panic(expected = "left == right")]
    fn failing_eq_reports_values(a in 1i64..10) {
        prop_assert_eq!(a, a + 1);
    }
}
