//! Offline stand-in for the published
//! [`criterion`](https://docs.rs/criterion/0.5) benchmark harness, providing
//! the API subset this workspace's `[[bench]]` targets use:
//!
//! * [`criterion_group!`] / [`criterion_main!`],
//! * [`Criterion::benchmark_group`] with [`BenchmarkGroup::sample_size`],
//!   [`BenchmarkGroup::bench_function`], [`BenchmarkGroup::bench_with_input`]
//!   and [`BenchmarkGroup::finish`],
//! * [`Bencher::iter`], [`BenchmarkId`], and [`black_box`].
//!
//! Instead of criterion's statistical pipeline it times each benchmark over a
//! fixed number of samples and prints the per-iteration median to stdout —
//! enough to compare hot paths locally while the build environment has no
//! crates.io access. Swapping the real dependency back in is a manifest-only
//! change.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

const DEFAULT_SAMPLE_SIZE: usize = 20;

/// The benchmark manager handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: DEFAULT_SAMPLE_SIZE }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), DEFAULT_SAMPLE_SIZE, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Times `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Times `f` under `id`, passing it `input` by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group. (The real criterion emits summary reports here.)
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id combining a function name and one parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { text: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id consisting of the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times one routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording one sample per configured iteration batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        let elapsed = start.elapsed() / self.iters_per_sample as u32;
        self.samples.push(elapsed);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher { samples: Vec::with_capacity(sample_size), iters_per_sample: 1 };
    // Warm-up sample, discarded.
    f(&mut bencher);
    bencher.samples.clear();
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let mut samples = bencher.samples;
    if samples.is_empty() {
        // The closure never called `iter`; nothing to report.
        println!("{label:<60} (no measurement)");
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    println!("{label:<60} median {median:>12.2?} over {} samples", samples.len());
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| 1u64 + 1));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| b.iter(|| n * 2));
        group.finish();
    }
}
