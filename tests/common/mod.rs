//! Shared fixtures for the integration suites: the seeded workload
//! builders, the per-suite query mixes, and the process-global thread-pool
//! guard — previously duplicated across `tests/*.rs`, now defined once.
//!
//! Every test binary compiles this module independently (`mod common;`) and
//! uses only the subset it needs, hence the blanket `dead_code` allow.
#![allow(dead_code)]

pub mod edits;

use std::sync::{Arc, Mutex, MutexGuard};

use topo_core::parallel::{global_threads, set_global_threads};
use topo_core::spatial::transform::AffineMap;
use topo_core::{top, SpatialInstance, TopologicalInvariant, TopologicalQuery};
use topo_datagen::{
    figure1, ign_city, nested_rings, scattered_islands, sequoia_hydro, sequoia_landcover, Scale,
};

/// Serialises every test that touches the process-global pool size
/// (`topo_parallel::set_global_threads`), and restores the
/// environment-derived default on drop so test order cannot leak one test's
/// sweep into another.
static POOL_LOCK: Mutex<()> = Mutex::new(());

pub struct PoolGuard {
    _lock: MutexGuard<'static, ()>,
    previous: usize,
}

impl PoolGuard {
    pub fn take() -> Self {
        let lock = POOL_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        PoolGuard { previous: global_threads(), _lock: lock }
    }
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        set_global_threads(self.previous);
    }
}

/// The full fingerprint a `top(I)` build must reproduce exactly.
pub fn fingerprint(instance: &SpatialInstance) -> (usize, usize, usize, String, u64) {
    let invariant = top(instance);
    (
        invariant.vertex_count(),
        invariant.edge_count(),
        invariant.face_count(),
        format!("{:?}", invariant.canonical_code()),
        invariant.code_hash().as_u64(),
    )
}

/// Labelled seeded instances covering the running examples and all three
/// cartographic generators at the tiny scale (two seeds each).
pub fn seeded_workloads() -> Vec<(String, SpatialInstance)> {
    let mut all = vec![
        ("figure1".to_string(), figure1()),
        ("nested_rings(4, 3)".to_string(), nested_rings(4, 3)),
        ("scattered_islands(8)".to_string(), scattered_islands(8)),
    ];
    for seed in [1u64, 42] {
        let scale = Scale::tiny();
        all.push((format!("sequoia_landcover(tiny, {seed})"), sequoia_landcover(scale, seed)));
        all.push((format!("sequoia_hydro(tiny, {seed})"), sequoia_hydro(scale, seed)));
        all.push((format!("ign_city(tiny, {seed})"), ign_city(scale, seed)));
    }
    all
}

/// A mixed seeded workload at one scale: the three cartographic generators
/// over two seeds, the running examples, and a transformed duplicate of
/// every base (translation / rotation / reflection round-robin) — so the
/// batch is duplicate-heavy by construction.
pub fn mixed_invariant_workload(grid: usize) -> Vec<Arc<TopologicalInvariant>> {
    let scale = Scale { grid };
    let mut bases = Vec::new();
    for seed in [1u64, 7] {
        bases.push(sequoia_landcover(scale, seed));
        bases.push(sequoia_hydro(scale, seed));
        bases.push(ign_city(scale, seed));
    }
    bases.push(figure1());
    bases.push(nested_rings(3, 2));
    bases.push(scattered_islands(4));
    bases.push(scattered_islands(5));
    let maps = [
        AffineMap::translation(50_000, -20_000),
        AffineMap::rotation90(),
        AffineMap::reflection_x(),
    ];
    let duplicates: Vec<_> =
        bases.iter().enumerate().map(|(i, b)| maps[i % maps.len()].apply_instance(b)).collect();
    bases.iter().chain(duplicates.iter()).map(|i| Arc::new(top(i))).collect()
}

/// A small duplicate-heavy invariant pool: four distinct shapes plus
/// transformed twins. Built once per test; ingests reuse the `Arc`s so the
/// (expensive) canonicalisation happens once per shape.
pub fn recovery_pool() -> Vec<Arc<TopologicalInvariant>> {
    let bases = [
        figure1(),
        nested_rings(2, 2),
        scattered_islands(3),
        sequoia_landcover(Scale { grid: 3 }, 1),
    ];
    let maps = [AffineMap::translation(40_000, -9_000), AffineMap::rotation90()];
    let mut out: Vec<Arc<TopologicalInvariant>> = bases.iter().map(|b| Arc::new(top(b))).collect();
    out.extend(
        bases.iter().enumerate().map(|(i, b)| Arc::new(top(&maps[i % 2].apply_instance(b)))),
    );
    out
}

/// A duplicate-heavy batch of pre-built invariants: a handful of distinct
/// tiny topologies, each repeated under several homeomorphic images, in
/// copy-major interleaving so duplicates of one topology arrive spread out
/// across the ingest stream (and across writer threads).
pub fn stress_batch() -> Vec<Arc<TopologicalInvariant>> {
    let scale = Scale { grid: 3 };
    let bases: Vec<SpatialInstance> = vec![
        sequoia_landcover(scale, 1),
        sequoia_hydro(scale, 1),
        sequoia_landcover(scale, 7),
        figure1(),
        nested_rings(3, 2),
        nested_rings(2, 3),
        scattered_islands(4),
        scattered_islands(5),
    ];
    let maps = [
        AffineMap::identity(),
        AffineMap::translation(90_000, -40_000),
        AffineMap::rotation90(),
        AffineMap::reflection_x(),
        AffineMap::rotation90().compose(&AffineMap::translation(7_777, 311)),
    ];
    maps.iter()
        .flat_map(|map| bases.iter().map(|base| Arc::new(top(&map.apply_instance(base)))))
        .collect()
}

/// The query mix of the equivalence suite: every library shape, over the
/// low region ids shared by all workload schemas (ids beyond a schema are
/// simply empty regions, on every evaluation route alike).
pub fn equivalence_query_mix() -> Vec<TopologicalQuery> {
    use TopologicalQuery as Q;
    vec![
        Q::Intersects(0, 1),
        Q::Disjoint(0, 1),
        Q::Contains(0, 1),
        Q::Equal(0, 1),
        Q::BoundaryOnlyIntersection(0, 1),
        Q::InteriorsOverlap(0, 1),
        Q::IsConnected(0),
        Q::IsConnected(1),
        Q::ComponentCountEven(0),
        Q::HasHole(0),
        Q::HasHole(1),
    ]
}

/// The query mix of the recovery suite.
pub fn recovery_query_mix() -> Vec<TopologicalQuery> {
    use TopologicalQuery as Q;
    vec![
        Q::Intersects(0, 1),
        Q::Contains(0, 1),
        Q::IsConnected(0),
        Q::ComponentCountEven(0),
        Q::HasHole(0),
        Q::HasHole(1),
    ]
}

/// The query mix of the concurrency stress suite.
pub fn stress_query_mix() -> Vec<TopologicalQuery> {
    use TopologicalQuery as Q;
    vec![
        Q::Intersects(0, 1),
        Q::Contains(0, 1),
        Q::BoundaryOnlyIntersection(0, 1),
        Q::InteriorsOverlap(0, 1),
        Q::IsConnected(0),
        Q::ComponentCountEven(0),
        Q::HasHole(0),
    ]
}

/// The query mix of the batch-ingest equivalence checks.
pub fn batch_query_mix() -> Vec<TopologicalQuery> {
    use TopologicalQuery as Q;
    vec![
        Q::Intersects(0, 1),
        Q::Contains(0, 1),
        Q::IsConnected(0),
        Q::Equal(0, 1),
        Q::Disjoint(1, 2),
    ]
}
