//! Reusable proptest strategies for **region edit sequences** — the random
//! inputs of the incremental-maintenance differential harness
//! (`tests/incremental_equivalence.rs`). They live next to the template
//! strategies of `tests/properties.rs` / `tests/canonical_equivalence.rs`
//! and follow the same lattice discipline: coordinates on a coarse grid so
//! overlaps, shared boundaries and nesting all occur with real probability.
//!
//! Geometry is grouped into up to three *islands* (clusters 3 000 apart):
//! edits that add or drop a multi-island region, or a deliberately wide
//! *bridge* rectangle spanning two islands, exercise the hull-group
//! split/merge paths of `MaintainedInvariant`, not just local repair.

use proptest::prelude::*;
use topo_core::{Region, SpatialInstance};
use topo_geometry::Point;

/// Number of regions in the edit-sequence schema (named A, B, C).
pub const EDIT_REGIONS: usize = 3;

/// One step of an edit sequence: replace a region's geometry wholesale or
/// clear it. Removing an already-empty region and re-inserting identical
/// geometry are both legal (and deliberately generated) steps.
#[derive(Clone, Debug)]
pub enum Edit {
    Insert(usize, Region),
    Remove(usize),
}

impl Edit {
    /// The region id this edit touches.
    pub fn region(&self) -> usize {
        match self {
            Edit::Insert(id, _) => *id,
            Edit::Remove(id) => *id,
        }
    }

    /// Applies the edit to a plain region vector — the cold-rebuild mirror
    /// of the maintained state.
    pub fn apply_to(&self, regions: &mut [Region]) {
        match self {
            Edit::Insert(id, region) => regions[*id] = region.clone(),
            Edit::Remove(id) => regions[*id] = Region::new(),
        }
    }
}

/// The empty starting state every edit sequence begins from.
pub fn empty_edit_regions() -> Vec<Region> {
    vec![Region::new(); EDIT_REGIONS]
}

/// Assembles a `SpatialInstance` over the fixed A/B/C schema from the
/// mirror vector.
pub fn edit_instance(regions: &[Region]) -> SpatialInstance {
    SpatialInstance::from_regions([
        ("A", regions[0].clone()),
        ("B", regions[1].clone()),
        ("C", regions[2].clone()),
    ])
}

/// Horizontal island pitch: far enough that closed bounding boxes of
/// different islands can never touch, so each island is its own hull group.
const ISLAND_PITCH: i64 = 3_000;

/// Strategy: one region made of 1–3 lattice rectangles (each on one of
/// three islands, or a wide *bridge* spanning islands 0–1), an optional
/// polyline and up to two isolated points. Per-component offsets keep same-
/// region boundaries from being collinear-coincident, as in the template
/// strategies.
pub fn edit_region() -> impl Strategy<Value = Region> {
    let rect = (0i64..5, 0i64..5, 1i64..4, 1i64..4, 0usize..4).prop_map(|(x, y, w, h, island)| {
        if island == 3 {
            // A bridge: spans islands 0 and 1, forcing a group merge.
            (x * 100, y * 100, ISLAND_PITCH + x * 100 + w * 70, y * 100 + h * 70)
        } else {
            let dx = island as i64 * ISLAND_PITCH;
            (dx + x * 100, y * 100, dx + x * 100 + w * 70, y * 100 + h * 70)
        }
    });
    let rects = proptest::collection::vec(rect, 1..4);
    let polyline = (0i64..5, 0i64..5, 0usize..3, 0u8..2);
    let points = proptest::collection::vec((0i64..40, 0i64..40, 0usize..3), 0..3);
    (rects, polyline, points).prop_map(|(rects, polyline, points)| {
        let mut region = Region::new();
        for (i, (x0, y0, x1, y1)) in rects.into_iter().enumerate() {
            let (dx, dy) = (7 * i as i64, 11 * i as i64);
            region.add_ring(vec![
                Point::from_ints(x0 + dx, y0 + dy),
                Point::from_ints(x1 + dx, y0 + dy),
                Point::from_ints(x1 + dx, y1 + dy),
                Point::from_ints(x0 + dx, y1 + dy),
            ]);
        }
        let (px, py, island, keep) = polyline;
        if keep == 1 {
            let dx = island as i64 * ISLAND_PITCH;
            region.add_polyline(vec![
                Point::from_ints(dx + px * 100 - 30, py * 100),
                Point::from_ints(dx + px * 100 + 90, py * 100 + 50),
                Point::from_ints(dx + px * 100 + 90, py * 100 - 60),
            ]);
        }
        for (x, y, island) in points {
            let dx = island as i64 * ISLAND_PITCH;
            region.add_point(Point::from_ints(dx + x * 17 + 3, y * 13 + 1));
        }
        region
    })
}

/// Strategy: one edit — a removal with probability 1/5, otherwise a fresh
/// insert of random geometry, on a random region of the fixed schema.
pub fn edit() -> impl Strategy<Value = Edit> {
    (0usize..EDIT_REGIONS, 0u8..5, edit_region()).prop_map(|(id, op, region)| {
        if op == 0 {
            Edit::Remove(id)
        } else {
            Edit::Insert(id, region)
        }
    })
}

/// Strategy: a whole edit sequence of `min..max` steps.
pub fn edit_sequence(min: usize, max: usize) -> impl Strategy<Value = Vec<Edit>> {
    proptest::collection::vec(edit(), min..max)
}
