//! The paper's central promise, checked end to end: every topological query
//! of the library gives the same answer whether evaluated directly on the
//! spatial data, on the invariant, through a Datalog program on the exported
//! structure, or on the rebuilt (inverted) instance.

use topo_core::{Semantics, TopologicalQuery};

fn query_suite(regions: usize) -> Vec<TopologicalQuery> {
    let mut queries = Vec::new();
    for a in 0..regions.min(3) {
        queries.push(TopologicalQuery::IsConnected(a));
        queries.push(TopologicalQuery::ComponentCountEven(a));
        queries.push(TopologicalQuery::HasHole(a));
        for b in 0..regions.min(3) {
            if a != b {
                queries.push(TopologicalQuery::Intersects(a, b));
                queries.push(TopologicalQuery::Contains(a, b));
                queries.push(TopologicalQuery::BoundaryOnlyIntersection(a, b));
                queries.push(TopologicalQuery::InteriorsOverlap(a, b));
            }
        }
    }
    queries
}

#[test]
fn all_strategies_agree_on_hydro() {
    let instance = topo_datagen::sequoia_hydro(topo_datagen::Scale::tiny(), 5);
    let invariant = topo_core::top(&instance);
    let structure = topo_core::program_structure(&invariant);
    let rebuilt = topo_core::invert(&invariant).expect("hydro is invertible");
    for query in query_suite(instance.schema().len()) {
        let direct = topo_core::evaluate_direct(&query, &instance);
        let on_invariant = topo_core::evaluate_on_invariant(&query, &invariant);
        assert_eq!(direct, on_invariant, "direct vs invariant on {query:?}");
        if let Some(program) = topo_core::datalog_program(&query, instance.schema()) {
            let out = program.run(&structure, Semantics::Stratified, usize::MAX).unwrap();
            let answer = out.relation(&program.output).map(|r| !r.is_empty()).unwrap_or(false);
            assert_eq!(direct, answer, "datalog vs direct on {query:?}");
            let goal_answer = program.run_goal_boolean(&structure, Semantics::Stratified);
            assert_eq!(direct, goal_answer, "goal-directed datalog vs direct on {query:?}");
        }
        let on_rebuilt = topo_core::evaluate_direct(&query, &rebuilt);
        assert_eq!(direct, on_rebuilt, "rebuilt vs direct on {query:?}");
    }
}

#[test]
fn all_strategies_agree_on_figure1() {
    let instance = topo_datagen::figure1();
    let invariant = topo_core::top(&instance);
    for query in query_suite(instance.schema().len()) {
        assert_eq!(
            topo_core::evaluate_direct(&query, &instance),
            topo_core::evaluate_on_invariant(&query, &invariant),
            "disagreement on {query:?}"
        );
    }
}

#[test]
fn invariant_queries_are_homeomorphism_invariant() {
    let instance = topo_datagen::figure1();
    let invariant = topo_core::top(&instance);
    let reflected =
        topo_core::spatial::transform::AffineMap::reflection_x().apply_instance(&instance);
    let reflected_invariant = topo_core::top(&reflected);
    for query in query_suite(instance.schema().len()) {
        assert_eq!(
            topo_core::evaluate_on_invariant(&query, &invariant),
            topo_core::evaluate_on_invariant(&query, &reflected_invariant),
            "query {query:?} is not topological?"
        );
    }
}
