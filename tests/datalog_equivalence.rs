//! The delta-driven (semi-naive) Datalog engine must produce exactly the
//! derived relations of the frozen naive oracle (`datalog::naive`, behind the
//! `naive-reference` feature) on all three evaluation modes — inflationary,
//! stratified, and partial fixpoint — negation and counting included.
//!
//! Equivalence is asserted at the structure level (`Option<Structure>`
//! equality, i.e. every relation tuple-for-tuple and divergence verdicts
//! included), on three fronts:
//!
//! * the real invariant-side programs of `topo_queries::programs` over seeded
//!   datagen workloads,
//! * hand-picked programs that stress the delta rewrite's edge cases (counts
//!   over recursively-derived relations, negation inside recursion, rules
//!   with no derived positive literal),
//! * proptests over random range-restricted programs assembled from safe
//!   rule templates, run against random structures.

use proptest::prelude::*;
use topo_core::relational::datalog::naive;
use topo_core::relational::{Literal, Program, Rule, Semantics, Structure, Term};
use topo_core::{datalog_program, top, TopologicalQuery};
use topo_datagen::{figure1, ign_city, nested_rings, scattered_islands, sequoia_hydro, Scale};

fn v(i: u32) -> Term {
    Term::Var(i)
}

fn pos(relation: &str, terms: Vec<Term>) -> Literal {
    Literal::Pos { relation: relation.to_string(), terms }
}

fn neg(relation: &str, terms: Vec<Term>) -> Literal {
    Literal::Neg { relation: relation.to_string(), terms }
}

/// Runs both engines on every given semantics and asserts identical results.
fn assert_engines_agree(
    program: &Program,
    input: &Structure,
    semantics: &[Semantics],
    max_steps: usize,
    label: &str,
) {
    for &mode in semantics {
        let fast = program.run(input, mode, max_steps);
        let slow = naive::run(program, input, mode, max_steps);
        assert_eq!(
            fast.as_ref().map(Structure::fingerprint),
            slow.as_ref().map(Structure::fingerprint),
            "engines diverged on {label} under {mode:?}"
        );
        assert_eq!(fast, slow, "fingerprints agree but structures differ on {label}? ({mode:?})");
    }
}

const ALL_MODES: [Semantics; 3] =
    [Semantics::Inflationary, Semantics::Stratified, Semantics::Partial];

#[test]
fn query_library_programs_agree_on_seeded_workloads() {
    // Small scales: the frozen oracle re-scans full relations per binding
    // per round, so recursive programs (IsConnected's Reach is quadratic in
    // the region's cells) are only tractable for it on small invariants.
    // The bench runner exercises the larger scales in release mode.
    let instances = [
        ("figure1", figure1()),
        ("nested_rings", nested_rings(3, 2)),
        ("islands", scattered_islands(4)),
        ("hydro_small", sequoia_hydro(Scale { grid: 2 }, 5)),
        ("city_small", ign_city(Scale { grid: 2 }, 7)),
        (
            "three_rects",
            topo_core::SpatialInstance::from_regions([
                ("P", topo_core::Region::rectangle(0, 0, 100, 100)),
                ("Q", topo_core::Region::rectangle(20, 20, 80, 80)),
                ("R", topo_core::Region::rectangle(100, 0, 200, 100)),
            ]),
        ),
    ];
    let queries = [
        TopologicalQuery::Intersects(0, 1),
        TopologicalQuery::Disjoint(0, 1),
        TopologicalQuery::Contains(0, 1),
        TopologicalQuery::IsConnected(0),
        TopologicalQuery::HasHole(0),
    ];
    for (name, instance) in &instances {
        let invariant = top(instance);
        // The prepared export (successor scaffolding included) is what the
        // query library actually runs its programs on.
        let structure = topo_core::program_structure(&invariant);
        for query in &queries {
            if matches!(
                query,
                TopologicalQuery::Intersects(_, b)
                    | TopologicalQuery::Disjoint(_, b)
                    | TopologicalQuery::Contains(_, b)
                    if *b >= instance.schema().len()
            ) {
                continue;
            }
            let Some(program) = datalog_program(query, instance.schema()) else {
                continue;
            };
            // Stratified is the mode the library runs under; inflationary
            // must agree between engines too (its per-round semantics differ
            // from stratified, but the two engines must match round for
            // round).
            assert_engines_agree(
                &program,
                &structure,
                &[Semantics::Inflationary, Semantics::Stratified],
                usize::MAX,
                &format!("{query:?} on {name}"),
            );
        }
    }
}

#[test]
fn counting_program_agrees_on_island_workloads() {
    let schema = topo_core::Schema::from_names(["islands"]);
    for count in [2usize, 3, 5] {
        let invariant = top(&scattered_islands(count));
        let mut structure = invariant.to_structure();
        structure.add_numeric_relations();
        let program = topo_core::queries::programs::even_closed_curves_program(&schema, 0);
        assert_engines_agree(
            &program,
            &structure,
            &[Semantics::Inflationary, Semantics::Stratified],
            usize::MAX,
            &format!("even_closed_curves on {count} islands"),
        );
    }
}

/// A directed path with a fork, plus unary colours — enough structure for
/// recursion, negation and counting to all have bite.
fn fork_structure() -> Structure {
    let mut s = Structure::new(7);
    s.add_numeric_relations();
    for (a, b) in [(0u32, 1), (1, 2), (2, 3), (1, 4), (4, 5), (5, 3), (3, 6)] {
        s.insert("E", &[a, b]);
    }
    for i in 0..7u32 {
        s.insert("Node", &[i]);
    }
    for i in [0u32, 2, 4, 6] {
        s.insert("Mark", &[i]);
    }
    s
}

#[test]
fn count_over_recursive_relation_agrees() {
    // Reach grows over rounds and Deg counts it: the count literal reads a
    // relation being derived, which is exactly the case the delta rewrite
    // must *not* apply to. Unstratifiable (count through recursion is not),
    // so inflationary and partial only.
    let program = Program::new("Deg")
        .rule(Rule::new("Reach", vec![v(0), v(1)], vec![pos("E", vec![v(0), v(1)])]))
        .rule(Rule::new(
            "Reach",
            vec![v(0), v(2)],
            vec![pos("Reach", vec![v(0), v(1)]), pos("E", vec![v(1), v(2)])],
        ))
        .rule(Rule::new(
            "Deg",
            vec![v(0), v(1)],
            vec![
                pos("Node", vec![v(0)]),
                Literal::Count {
                    relation: "Reach".into(),
                    terms: vec![v(0), v(2)],
                    counted: vec![2],
                    result: v(1),
                },
            ],
        ));
    assert_engines_agree(
        &program,
        &fork_structure(),
        &[Semantics::Inflationary, Semantics::Partial],
        60,
        "count over recursive Reach",
    );
}

#[test]
fn negation_inside_recursion_agrees_inflationarily() {
    // Inflationary negation reads the frozen pre-round state, so the rounds'
    // exact contents matter (this program is not stratifiable).
    let program = Program::new("Odd")
        .rule(Rule::new("Odd", vec![v(1)], vec![pos("E", vec![Term::Const(0), v(1)])]))
        .rule(Rule::new(
            "Odd",
            vec![v(2)],
            vec![
                pos("Odd", vec![v(0)]),
                pos("E", vec![v(0), v(1)]),
                pos("E", vec![v(1), v(2)]),
                neg("Odd", vec![v(1)]),
            ],
        ));
    assert_engines_agree(
        &program,
        &fork_structure(),
        &[Semantics::Inflationary, Semantics::Partial],
        60,
        "negation inside recursion",
    );
}

#[test]
fn divergent_partial_fixpoint_agrees() {
    // Flip oscillates: both engines must report divergence (None), not hang
    // or disagree.
    let program = Program::new("Flip").rule(Rule::new(
        "Flip",
        vec![v(0)],
        vec![pos("Node", vec![v(0)]), neg("Flip", vec![v(0)])],
    ));
    let mut s = Structure::new(3);
    s.insert("Node", &[0]);
    s.insert("Node", &[2]);
    assert!(program.run(&s, Semantics::Partial, 50).is_none());
    assert!(naive::run(&program, &s, Semantics::Partial, 50).is_none());
}

#[test]
fn static_rules_and_empty_relations_agree() {
    // Rules with no derived positive literal (evaluated once, in round 0),
    // rules over never-declared relations, and nullary heads.
    let program = Program::new("Out")
        .rule(Rule::new(
            "Marked",
            vec![v(0)],
            vec![pos("Node", vec![v(0)]), pos("Mark", vec![v(0)])],
        ))
        .rule(Rule::new(
            "Lonely",
            vec![v(0)],
            vec![pos("Node", vec![v(0)]), neg("Ghost", vec![v(0)])],
        ))
        .rule(Rule::new("Out", vec![], vec![pos("Ghost", vec![v(0)])]))
        .rule(Rule::new(
            "Out2",
            vec![],
            vec![pos("Marked", vec![v(0)]), Literal::Neq(v(0), Term::Const(0))],
        ));
    assert_engines_agree(
        &program,
        &fork_structure(),
        &ALL_MODES,
        60,
        "static rules / unknown relations",
    );
}

/// Template-assembled random rule. Every template keeps the program
/// range-restricted by construction, and the derived-relation dependency
/// order (`D1` never reads `D0`/`Out`) keeps the stratifiable variant
/// stratifiable.
fn template_rule(idx: usize, c: u32, n: u32) -> Rule {
    let k = Term::Const(c % n);
    match idx {
        0 => Rule::new("D1", vec![v(0), v(1)], vec![pos("B1", vec![v(0), v(1)])]),
        1 => Rule::new(
            "D1",
            vec![v(0), v(2)],
            vec![pos("D1", vec![v(0), v(1)]), pos("B1", vec![v(1), v(2)])],
        ),
        2 => Rule::new(
            "D1",
            vec![v(0), v(2)],
            vec![pos("D1", vec![v(0), v(1)]), pos("D1", vec![v(1), v(2)])],
        ),
        3 => Rule::new("D1", vec![v(1), v(0)], vec![pos("B1", vec![v(0), v(1)])]),
        4 => Rule::new("D0", vec![v(0)], vec![pos("B1", vec![v(0), v(1)])]),
        5 => Rule::new("D0", vec![v(1)], vec![pos("D1", vec![v(0), v(1)]), pos("B0", vec![v(0)])]),
        6 => {
            Rule::new("D0", vec![v(1)], vec![pos("D1", vec![v(0), v(1)]), Literal::Neq(v(0), v(1))])
        }
        7 => Rule::new("D0", vec![v(0)], vec![pos("B0", vec![v(0)]), neg("D1", vec![v(0), v(0)])]),
        8 => Rule::new("D0", vec![v(0)], vec![pos("B0", vec![v(0)]), neg("B1", vec![v(0), k])]),
        9 => Rule::new("D1", vec![v(0), k], vec![pos("D1", vec![v(0), v(1)])]),
        10 => Rule::new(
            "Out",
            vec![v(0)],
            vec![
                pos("B0", vec![v(0)]),
                Literal::Count {
                    relation: "D1".into(),
                    terms: vec![v(0), v(1)],
                    counted: vec![1],
                    result: v(2),
                },
                pos("Even", vec![v(2)]),
            ],
        ),
        11 => Rule::new(
            "Out",
            vec![v(0)],
            vec![
                pos("D0", vec![v(0)]),
                Literal::Count {
                    relation: "B1".into(),
                    terms: vec![v(1), v(0)],
                    counted: vec![1],
                    result: Term::Const(c % 3),
                },
            ],
        ),
        12 => Rule::new(
            "Out",
            vec![v(0)],
            vec![pos("D0", vec![v(0)]), pos("D1", vec![v(0), v(1)]), neg("D0", vec![v(1)])],
        ),
        _ => Rule::new("Out", vec![v(0)], vec![pos("D0", vec![v(0)]), Literal::Eq(v(0), k)]),
    }
}

/// Additional inflationary-only templates: counting and negation through
/// recursion (not stratifiable, but inflationary and partial semantics are
/// defined for them — and they are the cases the delta rewrite must bail on).
fn unstratifiable_template_rule(idx: usize, c: u32, n: u32) -> Rule {
    let k = Term::Const(c % n);
    match idx {
        0 => Rule::new(
            "D0",
            vec![v(1)],
            vec![pos("D0", vec![v(0)]), pos("B1", vec![v(0), v(1)]), neg("D0", vec![v(1)])],
        ),
        1 => Rule::new(
            "D1",
            vec![v(0), v(1)],
            vec![
                pos("D1", vec![v(0), v(1)]),
                Literal::Count {
                    relation: "D1".into(),
                    terms: vec![v(0), v(2)],
                    counted: vec![2],
                    result: v(3),
                },
                pos("NumLess", vec![v(3), k]),
            ],
        ),
        2 => Rule::new(
            "D1",
            vec![v(1), v(2)],
            vec![
                pos("D1", vec![v(0), v(1)]),
                pos("B1", vec![v(1), v(2)]),
                Literal::Count {
                    relation: "D0".into(),
                    terms: vec![v(3)],
                    counted: vec![3],
                    result: v(4),
                },
                pos("Even", vec![v(4)]),
            ],
        ),
        _ => Rule::new("D0", vec![k], vec![pos("B0", vec![k])]),
    }
}

/// A random input structure with binary `B1`, unary `B0`, and the numeric
/// scaffolding counting programs need.
fn random_structure() -> impl Strategy<Value = Structure> {
    let edges = proptest::collection::vec((0u32..16, 0u32..16), 0..14);
    let marks = proptest::collection::vec(0u32..16, 0..6);
    (4usize..8, edges, marks).prop_map(|(n, edges, marks)| {
        let mut s = Structure::new(n);
        s.add_numeric_relations();
        s.add_relation("B0", 1);
        s.add_relation("B1", 2);
        for (a, b) in edges {
            s.insert("B1", &[a % n as u32, b % n as u32]);
        }
        for m in marks {
            s.insert("B0", &[m % n as u32]);
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random stratifiable range-restricted programs: both engines must
    /// produce identical structures under all three semantics.
    #[test]
    fn random_stratifiable_programs_agree(
        input in random_structure(),
        picks in proptest::collection::vec((0usize..14, 0u32..8), 1..7),
    ) {
        let n = input.domain_size() as u32;
        let mut program = Program::new("Out");
        for (idx, c) in picks {
            program.rules.push(template_rule(idx, c, n));
        }
        for mode in ALL_MODES {
            let fast = program.run(&input, mode, 40);
            let slow = naive::run(&program, &input, mode, 40);
            prop_assert_eq!(
                fast, slow,
                "engines diverged under {:?} on program {:?}", mode, program
            );
        }
    }

    /// Random programs with negation and counting *through recursion*: not
    /// stratifiable, but the inflationary and partial semantics are defined
    /// and the engines must agree round for round — these are exactly the
    /// rules the delta rewrite must fall back to full re-evaluation on.
    #[test]
    fn random_unstratifiable_programs_agree(
        input in random_structure(),
        seeds in proptest::collection::vec((0usize..14, 0u32..8), 1..5),
        recursive in proptest::collection::vec((0usize..4, 0u32..8), 1..4),
    ) {
        let n = input.domain_size() as u32;
        let mut program = Program::new("Out");
        for (idx, c) in seeds {
            program.rules.push(template_rule(idx, c, n));
        }
        for (idx, c) in recursive {
            program.rules.push(unstratifiable_template_rule(idx, c, n));
        }
        for mode in [Semantics::Inflationary, Semantics::Partial] {
            let fast = program.run(&input, mode, 40);
            let slow = naive::run(&program, &input, mode, 40);
            prop_assert_eq!(
                fast, slow,
                "engines diverged under {:?} on program {:?}", mode, program
            );
        }
    }
}
