//! Recovery equivalence under deterministic fault injection.
//!
//! The durability contract of `InvariantStore` is: whatever survives on the
//! durable medium after *any* injected failure — a failed write, a crash at
//! a named site, a torn tail record, a short read — recovers into a store
//! whose class partition and query answers are bit-identical to a
//! never-crashed oracle store that executed the surviving operation prefix.
//! Because WAL records are appended inside the store's write-lock critical
//! sections, the surviving log is always a prefix of operation history
//! (ingest ids dense in WAL order), which is what makes the oracle
//! construction — replay the first `k` operations on a fresh in-memory
//! store — sound, including under concurrent writers.

use std::sync::Arc;
use topo_core::{
    FaultKind, FaultPlan, FaultSite, FaultyBackend, FileBackend, IngestOutcome, InvariantStore,
    MemoryBackend, PersistError, StorageBackend, StoreConfig, TopologicalInvariant,
};

mod common;
use common::{recovery_pool as pool, recovery_query_mix as query_mix};

/// One mutating operation of a scripted workload.
#[derive(Clone)]
enum Op {
    Ingest(Arc<TopologicalInvariant>),
    Remove(usize),
    Update(usize, Arc<TopologicalInvariant>),
}

/// The scripted workload every fault scenario runs: ingests with duplicates
/// interleaved with removals (including one that garbage-collects a class)
/// and in-place updates covering all three update shapes — no-op,
/// class-collecting dedup, and class-admitting.
fn script(pool: &[Arc<TopologicalInvariant>]) -> Vec<Op> {
    vec![
        Op::Ingest(pool[0].clone()),    // id 0, class 0
        Op::Ingest(pool[1].clone()),    // id 1, class 1
        Op::Ingest(pool[4].clone()),    // id 2, dup of class 0
        Op::Ingest(pool[2].clone()),    // id 3, class 2
        Op::Remove(1),                  // collects class 1
        Op::Ingest(pool[5].clone()),    // id 4, dup of class 1's shape → new class
        Op::Ingest(pool[3].clone()),    // id 5, class
        Op::Remove(0),                  // class 0 survives through id 2
        Op::Ingest(pool[6].clone()),    // id 6, dup of class 2
        Op::Ingest(pool[7].clone()),    // id 7, dup of id 5's class
        Op::Update(2, pool[1].clone()), // id 2 joins id 4's class; collects its old class
        Op::Update(6, pool[2].clone()), // no-op: id 6 already sits in that class
        Op::Update(5, pool[0].clone()), // id 5 re-admits the collected shape as a new class
        Op::Remove(7),                  // collects id 7's class
    ]
}

/// Replays a prefix of the script on a store (id assignment follows the
/// script because ingest ids are dense).
fn run_ops(store: &InvariantStore, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Ingest(invariant) => {
                store.ingest_invariant(invariant.clone());
            }
            Op::Remove(id) => {
                store.remove_instance(*id);
            }
            Op::Update(id, invariant) => {
                store.update_instance(*id, invariant.clone());
            }
        }
    }
}

/// A never-crashed in-memory oracle that executed the given op prefix.
fn oracle_for(ops: &[Op]) -> InvariantStore {
    let oracle = InvariantStore::default();
    run_ops(&oracle, ops);
    oracle
}

/// The heart of the suite: the recovered store must be observationally
/// identical to the oracle — bit-identical class partition, identical live
/// counts, and identical answers (including `None` for dead ids) for every
/// query in the mix over the whole id space.
fn assert_equivalent(recovered: &InvariantStore, oracle: &InvariantStore, label: &str) {
    assert_eq!(recovered.classes(), oracle.classes(), "{label}: class partition diverged");
    assert_eq!(recovered.instance_count(), oracle.instance_count(), "{label}: live instances");
    assert_eq!(recovered.class_count(), oracle.class_count(), "{label}: live classes");
    let ids = oracle.stats().instances + 4; // probe past the end too
    for query in query_mix() {
        assert_eq!(
            recovered.query_all(&query),
            oracle.query_all(&query),
            "{label}: query_all diverged on {query:?}"
        );
        for id in 0..ids {
            assert_eq!(
                recovered.query(id, &query),
                oracle.query(id, &query),
                "{label}: instance {id} on {query:?}"
            );
        }
    }
}

#[test]
fn clean_recovery_roundtrips_through_wal_and_snapshot() {
    let pool = pool();
    let ops = script(&pool);
    let backend = MemoryBackend::new();

    // Phase 1: WAL only.
    {
        let store = InvariantStore::open(StoreConfig::default(), backend.clone()).unwrap();
        run_ops(&store, &ops[..6]);
        assert_eq!(store.stats().wal_appends, 6);
    }
    let recovered = InvariantStore::open(StoreConfig::default(), backend.clone()).unwrap();
    assert_eq!(recovered.stats().replayed_records, 6);
    assert_equivalent(&recovered, &oracle_for(&ops[..6]), "wal-only recovery");

    // Phase 2: checkpoint folds the WAL into a snapshot, then more ops land
    // in a fresh WAL; recovery composes snapshot + replay.
    recovered.checkpoint().unwrap();
    assert_eq!(backend.wal_bytes().len(), 0, "checkpoint must reset the WAL");
    run_ops(&recovered, &ops[6..]);
    let recovered2 = InvariantStore::open(StoreConfig::default(), backend.clone()).unwrap();
    assert_eq!(recovered2.stats().replayed_records as usize, ops.len() - 6);
    assert_equivalent(&recovered2, &oracle_for(&ops), "snapshot+wal recovery");

    // Phase 3: a second checkpoint, then recovery from snapshot alone.
    recovered2.checkpoint().unwrap();
    let recovered3 = InvariantStore::open(StoreConfig::default(), backend).unwrap();
    assert_eq!(recovered3.stats().replayed_records, 0);
    assert_equivalent(&recovered3, &oracle_for(&ops), "snapshot-only recovery");
}

#[test]
fn crash_at_every_wal_append_recovers_the_exact_prefix() {
    let pool = pool();
    let ops = script(&pool);
    for kind in [FaultKind::Crash, FaultKind::TornWrite] {
        for n in 0..ops.len() {
            let durable = MemoryBackend::new();
            let faulty = FaultyBackend::new(
                durable.clone(),
                FaultPlan::once(FaultSite::WalAppend, n as u64, kind),
            );
            let store = InvariantStore::open(StoreConfig::default(), faulty.clone()).unwrap();
            // The store itself never fails the in-memory operation: it keeps
            // serving and counts the lost records.
            run_ops(&store, &ops);
            assert!(faulty.is_dead(), "the fault must have fired");
            assert_eq!(store.stats().wal_appends as usize, n);
            assert_eq!(store.stats().wal_errors as usize, ops.len() - n);
            drop(store);

            let recovered = InvariantStore::open(StoreConfig::default(), durable.clone()).unwrap();
            let label = format!("{kind:?} at append {n}");
            assert_eq!(recovered.stats().replayed_records as usize, n, "{label}");
            if kind == FaultKind::TornWrite && n > 0 {
                // The half-written record must have been detected and cut.
                assert_eq!(recovered.stats().wal_truncations, 1, "{label}");
            }
            assert_equivalent(&recovered, &oracle_for(&ops[..n]), &label);
        }
    }
}

/// The one-record atomicity contract of `update_instance`: crash (or tear)
/// the log exactly around each update record and recovery must serve the
/// complete pre-update state or the complete post-update state — never a
/// torn middle where the old class was detached but the new one not
/// attached, or a collected class half-vanished.
#[test]
fn update_wal_records_are_atomic_under_crash() {
    let pool = pool();
    let ops = script(&pool);
    let update_indices: Vec<usize> = ops
        .iter()
        .enumerate()
        .filter(|(_, op)| matches!(op, Op::Update(..)))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(update_indices.len(), 3, "the script must exercise all three update shapes");
    for kind in [FaultKind::Crash, FaultKind::TornWrite] {
        for &n in &update_indices {
            // `boundary == n`: the fault eats the update record — recovery is
            // the old state. `boundary == n + 1`: the record landed whole —
            // recovery is the new state. Nothing in between exists.
            for boundary in [n, n + 1] {
                let durable = MemoryBackend::new();
                let faulty = FaultyBackend::new(
                    durable.clone(),
                    FaultPlan::once(FaultSite::WalAppend, boundary as u64, kind),
                );
                let store = InvariantStore::open(StoreConfig::default(), faulty).unwrap();
                run_ops(&store, &ops);
                drop(store);
                let recovered = InvariantStore::open(StoreConfig::default(), durable).unwrap();
                let label = format!("{kind:?} around update at op {n}, boundary {boundary}");
                assert_eq!(recovered.stats().replayed_records as usize, boundary, "{label}");
                assert_equivalent(&recovered, &oracle_for(&ops[..boundary]), &label);
            }
        }
    }

    // And with no fault at all, every update record replays — including the
    // no-op one — onto the very state the live store ended with.
    let durable = MemoryBackend::new();
    {
        let store = InvariantStore::open(StoreConfig::default(), durable.clone()).unwrap();
        run_ops(&store, &ops);
    }
    let recovered = InvariantStore::open(StoreConfig::default(), durable).unwrap();
    assert_eq!(recovered.stats().updates as usize, update_indices.len());
    assert_equivalent(&recovered, &oracle_for(&ops), "clean update replay");
}

/// Live semantics of `update_instance`: outcome per path, id stability, the
/// admission bound counting the slot the update frees, and rejection
/// leaving the store bit-identical.
#[test]
fn update_instance_live_semantics() {
    let pool = pool();
    let config = StoreConfig { max_classes: 2, ..StoreConfig::default() };
    let store = InvariantStore::new(config);
    assert_eq!(store.ingest_invariant(pool[0].clone()), 0);
    assert_eq!(store.ingest_invariant(pool[4].clone()), 1); // dup of class 0
    assert_eq!(store.ingest_invariant(pool[1].clone()), 2); // class 1

    // Unknown id: untouched, no outcome.
    assert_eq!(store.update_instance(9, pool[2].clone()), None);

    // A new shape while the old class keeps other members frees no slot:
    // the bound holds and the store is left exactly as it was.
    let before = store.classes();
    assert_eq!(store.update_instance(0, pool[2].clone()), Some(IngestOutcome::Rejected));
    assert_eq!(store.classes(), before, "a rejected update must not move anything");
    assert_eq!(store.stats().updates, 0);
    assert_eq!(store.stats().rejected, 1);

    // Dedup into another live class; the old class survives through id 1.
    assert_eq!(store.update_instance(0, pool[5].clone()), Some(IngestOutcome::Deduplicated(0)));
    assert_eq!(store.class_of(0), store.class_of(2), "id 0 must share id 2's class");
    assert_eq!(store.class_count(), 2);

    // Now id 1 is its class's last member: updating it to a new shape frees
    // that slot, so the same bound admits a fresh class and collects the old.
    let gc_before = store.stats().gc_classes;
    assert_eq!(store.update_instance(1, pool[2].clone()), Some(IngestOutcome::Admitted(1)));
    assert_eq!(store.class_count(), 2);
    assert_eq!(store.stats().gc_classes, gc_before + 1, "the emptied class must collect");

    // A no-op update (already in that class) is observable only in stats.
    let partition = store.classes();
    assert_eq!(store.update_instance(2, pool[1].clone()), Some(IngestOutcome::Deduplicated(2)));
    assert_eq!(store.classes(), partition);
    assert_eq!(store.stats().updates, 3);

    // A removed id is dead to updates.
    assert!(store.remove_instance(0));
    assert_eq!(store.update_instance(0, pool[1].clone()), None);

    // Final answers equal the per-invariant oracle for the survivors.
    for query in query_mix() {
        assert_eq!(
            store.query(1, &query),
            Some(topo_core::evaluate_on_invariant(&query, &pool[2]))
        );
        assert_eq!(
            store.query(2, &query),
            Some(topo_core::evaluate_on_invariant(&query, &pool[1]))
        );
    }
}

#[test]
fn wal_write_error_freezes_the_log_but_not_the_store() {
    let pool = pool();
    let ops = script(&pool);
    let n = 4;
    let durable = MemoryBackend::new();
    let faulty = FaultyBackend::new(
        durable.clone(),
        FaultPlan::once(FaultSite::WalAppend, n as u64, FaultKind::Error),
    );
    let store = InvariantStore::open(StoreConfig::default(), faulty.clone()).unwrap();
    run_ops(&store, &ops);
    assert!(!faulty.is_dead(), "a plain write error must not kill the backend");

    // Live answers are unaffected — the store degraded durability, not
    // service.
    assert_equivalent(&store, &oracle_for(&ops), "live store after wal error");
    let stats = store.stats();
    assert_eq!(stats.wal_appends as usize, n);
    assert_eq!(
        stats.wal_errors as usize,
        ops.len() - n,
        "the log freezes after the first lost record: a gap would poison replay"
    );

    // What is durable is the exact prefix before the failed append.
    let recovered = InvariantStore::open(StoreConfig::default(), durable.clone()).unwrap();
    assert_equivalent(&recovered, &oracle_for(&ops[..n]), "recovery after wal error");

    // A successful checkpoint re-arms the log and captures everything.
    store.checkpoint().unwrap();
    let caught_up = InvariantStore::open(StoreConfig::default(), durable).unwrap();
    assert_equivalent(&caught_up, &oracle_for(&ops), "recovery after re-arming checkpoint");
}

#[test]
fn crash_between_snapshot_and_wal_reset_never_double_applies() {
    let pool = pool();
    let ops = script(&pool);
    let durable = MemoryBackend::new();
    let faulty = FaultyBackend::new(
        durable.clone(),
        FaultPlan::once(FaultSite::WalReset, 0, FaultKind::Crash),
    );
    let store = InvariantStore::open(StoreConfig::default(), faulty).unwrap();
    run_ops(&store, &ops);
    // The snapshot lands, then the crash hits before the WAL reset: the
    // medium now holds the snapshot AND every pre-checkpoint record.
    assert!(matches!(store.checkpoint(), Err(PersistError::Io(_))));
    assert!(durable.snapshot_bytes().is_some());
    assert!(!durable.wal_bytes().is_empty());
    drop(store);

    let recovered = InvariantStore::open(StoreConfig::default(), durable).unwrap();
    // Every WAL record predates the snapshot's seq, so replay skips all of
    // them — the removal ops in the script would corrupt the state if they
    // were applied twice.
    assert_eq!(recovered.stats().replayed_records, 0, "stale records must be skipped");
    assert_equivalent(&recovered, &oracle_for(&ops), "snapshot + stale wal");
}

#[test]
fn crash_during_snapshot_write_leaves_the_old_state_recoverable() {
    let pool = pool();
    let ops = script(&pool);
    let durable = MemoryBackend::new();
    {
        let store = InvariantStore::open(StoreConfig::default(), durable.clone()).unwrap();
        run_ops(&store, &ops[..6]);
        store.checkpoint().unwrap();
        run_ops(&store, &ops[6..]);
        // A torn snapshot write: half the new snapshot bytes replace the old
        // snapshot on a backend with no atomic-replace guarantee. The WAL is
        // NOT reset (checkpoint failed before that).
        let faulty = FaultyBackend::new(
            durable.clone(),
            FaultPlan::once(FaultSite::SnapshotWrite, 0, FaultKind::TornWrite),
        );
        let reopened = InvariantStore::open(StoreConfig::default(), faulty).unwrap();
        assert!(matches!(reopened.checkpoint(), Err(PersistError::Io(_))));
    }
    // The torn snapshot is detected by its checksum; there is no older
    // snapshot to fall back to on this backend, so recovery reports
    // corruption loudly instead of serving wrong answers.
    let result = InvariantStore::open(StoreConfig::default(), durable);
    assert!(
        matches!(result, Err(PersistError::Corrupt(_))),
        "a torn snapshot must be a hard, explicit error"
    );
}

#[test]
fn short_reads_recover_a_consistent_prefix() {
    let pool = pool();
    let ops = script(&pool);
    let durable = MemoryBackend::new();
    {
        let store = InvariantStore::open(StoreConfig::default(), durable.clone()).unwrap();
        run_ops(&store, &ops);
    }
    let full = durable.wal_bytes().len();
    // Cut the WAL view at several arbitrary byte boundaries; every cut must
    // recover some exact op prefix (replayed_records tells us which).
    for limit in [0, 7, full / 3, full / 2, full - 5, full] {
        let faulty = FaultyBackend::new(
            durable.clone(),
            FaultPlan { faults: Vec::new(), short_read_wal: Some(limit) },
        );
        let recovered = InvariantStore::open(StoreConfig::default(), faulty).unwrap();
        let k = recovered.stats().replayed_records as usize;
        assert!(k <= ops.len());
        if limit < full {
            assert!(k < ops.len(), "a shortened WAL cannot contain every record");
        }
        assert_equivalent(&recovered, &oracle_for(&ops[..k]), &format!("short read at {limit}"));
    }
}

#[test]
fn hand_corrupted_wal_tails_are_truncated_not_trusted() {
    let pool = pool();
    let ops = script(&pool);
    let durable = MemoryBackend::new();
    {
        let store = InvariantStore::open(StoreConfig::default(), durable.clone()).unwrap();
        run_ops(&store, &ops);
    }
    let pristine = durable.wal_bytes();

    // Flip one bit near the end of the log: the checksum of the record
    // containing it must fail, and replay must stop there.
    let mut flipped = pristine.clone();
    let idx = flipped.len() - 10;
    flipped[idx] ^= 0x10;
    durable.set_wal_bytes(flipped);
    let recovered = InvariantStore::open(StoreConfig::default(), durable.clone()).unwrap();
    let k = recovered.stats().replayed_records as usize;
    assert!(k < ops.len(), "the corrupt record must not replay");
    assert_eq!(recovered.stats().wal_truncations, 1);
    assert_equivalent(&recovered, &oracle_for(&ops[..k]), "bit flip near tail");

    // Garbage appended after valid records is likewise cut at the boundary.
    let mut trailing = pristine.clone();
    trailing.extend_from_slice(&[0xAB; 11]);
    durable.set_wal_bytes(trailing);
    let recovered = InvariantStore::open(StoreConfig::default(), durable).unwrap();
    assert_eq!(recovered.stats().replayed_records as usize, ops.len());
    assert_eq!(recovered.stats().wal_truncations, 1);
    assert_equivalent(&recovered, &oracle_for(&ops), "trailing garbage");
}

#[test]
fn corrupt_snapshots_fail_loudly() {
    let pool = pool();
    let durable = MemoryBackend::new();
    {
        let store = InvariantStore::open(StoreConfig::default(), durable.clone()).unwrap();
        store.ingest_invariant(pool[0].clone());
        store.checkpoint().unwrap();
    }
    let pristine = durable.snapshot_bytes().unwrap();

    // Bad magic.
    let mut bad = pristine.clone();
    bad[0] = b'X';
    durable.set_snapshot_bytes(Some(bad));
    assert!(matches!(
        InvariantStore::open(StoreConfig::default(), durable.clone()),
        Err(PersistError::Corrupt(_))
    ));

    // Unsupported version.
    let mut bad = pristine.clone();
    bad[4] = 0xFF;
    durable.set_snapshot_bytes(Some(bad));
    assert!(matches!(
        InvariantStore::open(StoreConfig::default(), durable.clone()),
        Err(PersistError::Corrupt(_))
    ));

    // A flipped payload bit fails the body checksum.
    let mut bad = pristine.clone();
    let mid = pristine.len() / 2;
    bad[mid] ^= 0x01;
    durable.set_snapshot_bytes(Some(bad));
    assert!(matches!(
        InvariantStore::open(StoreConfig::default(), durable.clone()),
        Err(PersistError::Corrupt(_))
    ));

    // The pristine bytes still recover (the corruption checks above did not
    // mutate shared state).
    durable.set_snapshot_bytes(Some(pristine));
    let recovered = InvariantStore::open(StoreConfig::default(), durable).unwrap();
    assert_eq!(recovered.instance_count(), 1);
}

#[test]
fn concurrent_writers_crash_recovery_is_an_id_prefix() {
    const WRITERS: usize = 4;
    const PER_WRITER: usize = 6;
    let pool = pool();
    let crash_at = 9; // mid-flight: some writers' ops land, some don't
    let durable = MemoryBackend::new();
    let faulty = FaultyBackend::new(
        durable.clone(),
        FaultPlan::once(FaultSite::WalAppend, crash_at, FaultKind::Crash),
    );
    let store = InvariantStore::open(StoreConfig::default(), faulty).unwrap();

    // Writers ingest concurrently, each recording the id it was assigned for
    // every invariant; readers hammer queries meanwhile to exercise the
    // locks. The union of the id logs reconstructs ingest order.
    let mut id_log: Vec<(usize, Arc<TopologicalInvariant>)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..WRITERS {
            let pool = &pool;
            let store = &store;
            handles.push(scope.spawn(move || {
                let mut log = Vec::new();
                for i in 0..PER_WRITER {
                    let invariant = pool[(w * 3 + i * 5) % pool.len()].clone();
                    let id = store.ingest_invariant(invariant.clone());
                    log.push((id, invariant));
                }
                log
            }));
        }
        let store = &store;
        let reader = scope.spawn(move || {
            let mix = query_mix();
            for i in 0..200 {
                let _ = store.query(i % (WRITERS * PER_WRITER), &mix[i % mix.len()]);
            }
        });
        for handle in handles {
            id_log.extend(handle.join().expect("writer panicked"));
        }
        reader.join().expect("reader panicked");
    });
    assert_eq!(store.instance_count(), WRITERS * PER_WRITER);
    drop(store);

    // Because appends happen inside the ingest critical section, the durable
    // WAL is the first `crash_at` ingests in id order. The oracle replays
    // exactly those on a fresh store.
    id_log.sort_by_key(|(id, _)| *id);
    assert!(id_log.iter().map(|(id, _)| *id).eq(0..WRITERS * PER_WRITER), "ids must be dense");
    let recovered = InvariantStore::open(StoreConfig::default(), durable).unwrap();
    let k = recovered.stats().replayed_records as usize;
    assert_eq!(k, crash_at as usize, "the WAL must hold exactly the pre-crash prefix");
    let ops: Vec<Op> = id_log[..k].iter().map(|(_, inv)| Op::Ingest(inv.clone())).collect();
    assert_equivalent(&recovered, &oracle_for(&ops), "concurrent crash recovery");
}

#[test]
fn file_backend_recovers_across_reopen() {
    let pool = pool();
    let ops = script(&pool);
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("store_recovery_file");
    let _ = std::fs::remove_dir_all(&dir);

    {
        let backend = Arc::new(FileBackend::new(&dir).unwrap());
        let store = InvariantStore::open(StoreConfig::default(), backend).unwrap();
        run_ops(&store, &ops[..6]);
        store.checkpoint().unwrap();
        run_ops(&store, &ops[6..]);
    }
    {
        let backend = Arc::new(FileBackend::new(&dir).unwrap());
        let recovered = InvariantStore::open(StoreConfig::default(), backend).unwrap();
        assert_equivalent(&recovered, &oracle_for(&ops), "file backend reopen");

        // Torn tail on the real file: append garbage, reopen, truncate.
        let half_record = [0x55u8; 9];
        recovered.checkpoint().unwrap();
        run_ops(&recovered, &[ops[0].clone()]);
        StorageBackend::append_wal(&FileBackend::new(&dir).unwrap(), &half_record).unwrap();
    }
    {
        let backend = Arc::new(FileBackend::new(&dir).unwrap());
        let recovered = InvariantStore::open(StoreConfig::default(), backend).unwrap();
        assert_eq!(recovered.stats().wal_truncations, 1);
        let mut expected = ops.clone();
        expected.push(ops[0].clone());
        assert_equivalent(&recovered, &oracle_for(&expected), "file backend torn tail");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
