//! The differential harness for incremental `top(I)` maintenance: after
//! **every** step of an edit sequence, the maintained invariant must be
//! bit-identical to a cold rebuild of the same instance — cell counts,
//! canonical code, `CodeHash` — and, at scales where the frozen
//! `naive-reference` oracle is tractable, identical to the pre-optimisation
//! pipeline and codes as well. Store answers obtained through
//! `update_instance` must track the edits query-for-query.
//!
//! Edit sequences come in three flavours: scripted split/merge scenarios
//! (regions bridging previously disjoint hull groups, nesting, shared
//! boundaries), drain-and-refill sweeps over every seeded workload in
//! adversarial orders, and random sequences from the reusable strategies in
//! `tests/common/edits.rs`. The whole harness runs under thread pools of 1
//! and 8, and CI additionally repeats it under `TOPO_THREADS=1/8` and the
//! `naive-reference` feature.

use std::sync::Arc;

use proptest::prelude::*;
use topo_core::parallel::set_global_threads;
use topo_core::{
    canonical_code_naive, evaluate_on_invariant, top, top_naive, InvariantStore,
    MaintainedInvariant, Region, TopologicalInvariant,
};
use topo_datagen::figure1;
use topo_geometry::Point;

mod common;
use common::edits::{edit_instance, edit_sequence, empty_edit_regions, Edit};
use common::PoolGuard;

/// The frozen reference canonicalisation is super-quadratic; cross-check
/// against it only while the complex is small.
const NAIVE_CELL_LIMIT: usize = 140;

/// The heart of the harness: every observable of the maintained invariant
/// equals a cold rebuild of the maintained instance, and — while small —
/// the frozen naive pipeline and frozen naive codes agree too.
fn assert_matches_cold(maintained: &MaintainedInvariant, label: &str) -> Arc<TopologicalInvariant> {
    let instance = maintained.instance();
    let cold = Arc::new(top(&instance));
    let repaired = maintained.invariant();
    assert_eq!(repaired.vertex_count(), cold.vertex_count(), "{label}: vertex count");
    assert_eq!(repaired.edge_count(), cold.edge_count(), "{label}: edge count");
    assert_eq!(repaired.face_count(), cold.face_count(), "{label}: face count");
    assert_eq!(
        repaired.canonical_code(),
        cold.canonical_code(),
        "{label}: canonical code diverged from the cold rebuild"
    );
    assert_eq!(repaired.code_hash(), cold.code_hash(), "{label}: code hash");
    if cold.cell_count() <= NAIVE_CELL_LIMIT {
        let naive = top_naive(&instance);
        assert_eq!(repaired.cell_count(), naive.cell_count(), "{label}: naive cell count");
        assert_eq!(
            canonical_code_naive(repaired),
            canonical_code_naive(&naive),
            "{label}: frozen reference codes diverged"
        );
    }
    cold
}

fn apply(maintained: &mut MaintainedInvariant, edit: &Edit) {
    match edit {
        Edit::Insert(id, region) => maintained.insert_region(*id, region.clone()),
        Edit::Remove(id) => maintained.remove_region(*id),
    }
}

fn rect(x0: i64, y0: i64, x1: i64, y1: i64) -> Vec<Point> {
    vec![
        Point::from_ints(x0, y0),
        Point::from_ints(x1, y0),
        Point::from_ints(x1, y1),
        Point::from_ints(x0, y1),
    ]
}

/// Scripted component split/merge scenario: two far-apart islands start as
/// separate hull groups, a bridge region merges them into one group, and
/// removing the bridge splits them again — with nesting and a polyline
/// thrown in so the repair crosses every feature kind.
#[test]
fn bridge_edits_split_and_merge_hull_groups() {
    let mut m = MaintainedInvariant::from_instance(&edit_instance(&empty_edit_regions()));
    assert_matches_cold(&m, "empty start");

    // Island 0: a square with a nested inner ring (containment inside one
    // group). Island 1: a plain square 5 000 to the east.
    let mut a = Region::new();
    a.add_ring(rect(0, 0, 400, 400));
    a.add_ring(rect(100, 100, 300, 300));
    m.insert_region(0, a.clone());
    assert_matches_cold(&m, "island 0 with nesting");

    let mut b = Region::new();
    b.add_ring(rect(5_000, 0, 5_400, 400));
    m.insert_region(1, b.clone());
    assert_matches_cold(&m, "two disjoint islands");

    // The bridge overlaps both islands: one merged hull group.
    let mut bridge = Region::new();
    bridge.add_ring(rect(300, 150, 5_100, 250));
    bridge.add_polyline(vec![Point::from_ints(200, 380), Point::from_ints(5_200, 380)]);
    m.insert_region(2, bridge);
    assert_matches_cold(&m, "bridged into one group");
    let merged_builds = m.stats().group_builds;
    let reuses_before = m.stats().group_reuses;

    // Removing the bridge splits the group again; the islands' cached
    // group states must be reused, not rebuilt.
    m.remove_region(2);
    assert_matches_cold(&m, "split back apart");
    assert_eq!(
        m.stats().group_builds,
        merged_builds,
        "splitting back must rebuild nothing — both island groups are cached"
    );
    assert!(
        m.stats().group_reuses >= reuses_before + 2,
        "both island groups must come from the cache"
    );

    // Same topology as before the bridge ever existed.
    let mut reference = MaintainedInvariant::from_instance(&edit_instance(&{
        let mut regions = empty_edit_regions();
        regions[0] = a;
        regions[1] = b;
        regions
    }));
    assert_eq!(m.invariant().canonical_code(), reference.invariant().canonical_code());
    reference.remove_region(0);
    m.remove_region(0);
    assert_matches_cold(&m, "island 0 gone");
    m.remove_region(1);
    assert_matches_cold(&m, "drained");
    assert_eq!(m.invariant().cell_count(), 1, "empty instance is the lone exterior face");
}

/// Every seeded workload survives a drain-and-refill sweep: remove each
/// region and re-insert it (local repair on a live instance), then drain
/// all regions and refill in reverse — an adversarial order that forces
/// group splits, merges and empty-schema edge cases. Checked after every
/// single step.
#[test]
fn seeded_workloads_drain_and_refill_incrementally() {
    for (label, instance) in common::seeded_workloads() {
        let mut m = MaintainedInvariant::from_instance(&instance);
        assert_matches_cold(&m, &format!("{label}: initial build"));
        let regions: Vec<Region> =
            (0..instance.schema().len()).map(|r| m.region(r).clone()).collect();

        for (r, region) in regions.iter().enumerate() {
            m.remove_region(r);
            assert_matches_cold(&m, &format!("{label}: removed region {r}"));
            m.insert_region(r, region.clone());
            assert_matches_cold(&m, &format!("{label}: re-inserted region {r}"));
        }
        // A full round-trip lands on the initial invariant exactly.
        assert_eq!(m.invariant().canonical_code(), top(&instance).canonical_code(), "{label}");

        for r in 0..regions.len() {
            m.remove_region(r);
            assert_matches_cold(&m, &format!("{label}: drain {r}"));
        }
        for (r, region) in regions.iter().enumerate().rev() {
            m.insert_region(r, region.clone());
            assert_matches_cold(&m, &format!("{label}: refill {r}"));
        }
        assert_eq!(m.invariant().canonical_code(), top(&instance).canonical_code(), "{label}");
    }
}

/// The maintained pipeline is bit-identical across thread-pool sizes: the
/// per-step code/hash trace of a fixed edit script is the same under the
/// sequential fallback and a parallel pool, and each step matches the cold
/// rebuild under that same pool.
#[test]
fn maintained_pipeline_is_deterministic_across_thread_pools() {
    let _guard = PoolGuard::take();
    let script: Vec<Edit> = vec![
        Edit::Insert(0, {
            let mut r = Region::new();
            r.add_ring(rect(0, 0, 300, 300));
            r.add_ring(rect(3_050, 10, 3_350, 310));
            r
        }),
        Edit::Insert(1, {
            let mut r = Region::new();
            r.add_ring(rect(150, 150, 3_200, 450));
            r
        }),
        Edit::Insert(2, {
            let mut r = Region::new();
            r.add_polyline(vec![Point::from_ints(-100, 0), Point::from_ints(400, 500)]);
            r.add_point(Point::from_ints(7_000, 7_000));
            r
        }),
        Edit::Remove(1),
        Edit::Insert(1, {
            let mut r = Region::new();
            r.add_ring(rect(60, 60, 240, 240));
            r
        }),
        Edit::Remove(0),
        Edit::Remove(2),
    ];

    let mut traces = Vec::new();
    for threads in [1usize, 8] {
        set_global_threads(threads);
        let mut m = MaintainedInvariant::from_instance(&edit_instance(&empty_edit_regions()));
        let mut trace = Vec::new();
        for (step, edit) in script.iter().enumerate() {
            apply(&mut m, edit);
            let cold = assert_matches_cold(&m, &format!("threads {threads}, step {step}"));
            trace.push((format!("{:?}", cold.canonical_code()), cold.code_hash().as_u64()));
        }
        traces.push(trace);
    }
    assert_eq!(traces[0], traces[1], "the edit trace must not depend on the pool size");
}

/// Store answers track incremental updates: one instance is edited through
/// `MaintainedInvariant`, pushed with `update_instance` after every step,
/// and the store's answers (and those of a store recovered from the WAL)
/// equal the cold-rebuild oracle at each step.
#[test]
fn store_answers_track_incremental_updates() {
    let backend = topo_core::MemoryBackend::new();
    let store = InvariantStore::open(Default::default(), backend.clone()).expect("open");
    let mut m = MaintainedInvariant::from_instance(&figure1());
    let id = store.ingest_invariant(m.invariant().clone());

    let schema_len = m.schema().len();
    let mut script: Vec<Edit> = Vec::new();
    let originals: Vec<Region> = (0..schema_len).map(|r| m.region(r).clone()).collect();
    for (r, region) in originals.iter().enumerate() {
        script.push(Edit::Remove(r));
        script.push(Edit::Insert(r, region.clone()));
    }
    script.push(Edit::Insert(0, {
        let mut r = Region::new();
        r.add_ring(rect(-900, -900, -500, -500));
        r
    }));

    for (step, edit) in script.iter().enumerate() {
        apply(&mut m, edit);
        let cold = assert_matches_cold(&m, &format!("store step {step}"));
        let outcome = store.update_instance(id, m.invariant().clone());
        assert!(outcome.is_some(), "step {step}: the instance must stay live");
        for query in common::equivalence_query_mix() {
            assert_eq!(
                store.query(id, &query),
                Some(evaluate_on_invariant(&query, &cold)),
                "step {step}: store answer diverged on {query:?}"
            );
        }
    }

    // The whole edit history recovers from the WAL into the final state.
    let final_answers: Vec<Option<bool>> =
        common::equivalence_query_mix().iter().map(|q| store.query(id, q)).collect();
    drop(store);
    let recovered = InvariantStore::open(Default::default(), backend).expect("recover");
    for (query, expected) in common::equivalence_query_mix().iter().zip(final_answers) {
        assert_eq!(recovered.query(id, query), expected, "recovered answer on {query:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random edit sequences from the shared strategies: insertions,
    /// removals and re-insertions across three islands (plus bridges), with
    /// the maintained invariant checked against the cold rebuild — and the
    /// frozen oracle while small — after every single step.
    #[test]
    fn random_edit_sequences_match_cold_rebuild(edits in edit_sequence(1, 10)) {
        let mut m = MaintainedInvariant::from_instance(&edit_instance(&empty_edit_regions()));
        let mut mirror = empty_edit_regions();
        for (step, edit) in edits.iter().enumerate() {
            apply(&mut m, edit);
            edit.apply_to(&mut mirror);
            let cold = assert_matches_cold(&m, &format!("random step {step}"));
            // The mirror instance (independent bookkeeping) builds the very
            // same invariant — `instance()` hides no state.
            let from_mirror = top(&edit_instance(&mirror));
            prop_assert_eq!(
                cold.canonical_code(),
                from_mirror.canonical_code(),
                "step {}: maintained snapshot diverged from the mirror", step
            );
        }
    }
}
