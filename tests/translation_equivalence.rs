//! Theorem 4.1 end to end: for topological sentences, evaluation on the
//! spatial instance equals evaluation of the translated query on the
//! invariant; plus the Lemma 3.1 ordering machinery of Theorem 3.2.

use topo_core::PointFormula;
use topo_translate::{all_invariant_orderings, orderings_agree, TranslatedQuery};

fn in_region(region: usize, var: u32) -> PointFormula {
    PointFormula::InRegion { region, var }
}

fn sentences() -> Vec<PointFormula> {
    vec![
        // Some lake exists.
        PointFormula::Exists(0, Box::new(in_region(0, 0))),
        // Every island point is a lake point (false: islands are holes).
        PointFormula::Forall(0, Box::new(in_region(1, 0).implies(in_region(0, 0)))),
        // Some river point is also a lake point.
        PointFormula::Exists(
            0,
            Box::new(PointFormula::And(vec![in_region(0, 0), in_region(2, 0)])),
        ),
        // There are two distinct estuary points.
        PointFormula::Exists(
            0,
            Box::new(PointFormula::Exists(
                1,
                Box::new(PointFormula::And(vec![
                    in_region(3, 0),
                    in_region(3, 1),
                    PointFormula::Not(Box::new(PointFormula::Eq(0, 1))),
                ])),
            )),
        ),
    ]
}

#[test]
fn translated_queries_agree_with_direct_evaluation() {
    let instance = topo_datagen::sequoia_hydro(topo_datagen::Scale::tiny(), 13);
    let invariant = topo_core::top(&instance);
    for sentence in sentences() {
        let translated = TranslatedQuery::new(sentence);
        let on_instance = translated.evaluate_on_instance(&instance);
        let on_invariant = translated.evaluate(&invariant).expect("hydro is invertible");
        assert_eq!(on_instance, on_invariant, "Theorem 4.1 equality failed");
    }
}

#[test]
fn translation_size_is_linear() {
    for sentence in sentences() {
        let size = sentence.size();
        let translated = TranslatedQuery::new(sentence);
        assert_eq!(translated.size(), size);
    }
}

#[test]
fn lemma_3_1_orderings_are_total_and_consistent() {
    let instance = topo_datagen::figure1();
    let invariant = topo_core::top(&instance);
    let orderings = all_invariant_orderings(&invariant, 128);
    assert!(orderings.len() > 1, "several parameter choices must exist");
    for ordering in &orderings {
        assert_eq!(ordering.order.len(), invariant.cell_count());
    }
    // Any order-invariant Boolean query agrees across orderings; here: "the
    // number of cells in region 0 exceeds the number in region 1".
    let (agree, _) = orderings_agree(&invariant, 128, |ordering| {
        let count = |region: usize| {
            ordering
                .order
                .iter()
                .filter(|&&(kind, id)| invariant.cell_in_region(kind, id, region))
                .count()
        };
        count(0) > count(1)
    });
    assert!(agree);
}

#[test]
fn ordered_copy_preserves_cell_census() {
    let instance = topo_datagen::nested_rings(3, 2);
    let invariant = topo_core::top(&instance);
    let structure = topo_translate::ordered_copy(&invariant);
    assert_eq!(
        topo_translate::translate::cell_census(&structure),
        (invariant.vertex_count(), invariant.edge_count(), invariant.face_count())
    );
}
