//! The overhauled canonicalisation (token-stream codes, memoised subtrees,
//! pruned Lemma 3.1 sweep, invariant-side cache) must induce exactly the same
//! partition into isomorphism classes as the frozen PR 2 reference
//! implementation (`canonical_code_naive`), and the cache on
//! [`TopologicalInvariant`] must never go stale.
//!
//! The codes themselves are different objects (compact `u32` tokens vs
//! strings), so equivalence is asserted at the partition level: two invariants
//! have equal token codes iff they have equal reference codes.

use proptest::prelude::*;
use topo_core::{canonical_code_naive, top, Region, SpatialInstance, TopologicalInvariant};
use topo_datagen::{
    figure1, ign_city, nested_rings, scattered_islands, sequoia_hydro, sequoia_landcover, Scale,
};
use topo_geometry::Point;

/// Asserts that the token codes and the reference codes partition the given
/// invariants identically.
fn assert_same_partition(invariants: &[TopologicalInvariant], label: &str) {
    let naive: Vec<String> = invariants.iter().map(canonical_code_naive).collect();
    for i in 0..invariants.len() {
        for j in i..invariants.len() {
            let fast_equal = invariants[i].canonical_code() == invariants[j].canonical_code();
            let naive_equal = naive[i] == naive[j];
            assert_eq!(
                fast_equal, naive_equal,
                "partition diverged between invariants {i} and {j} of {label}"
            );
            // `is_isomorphic_to` must agree with both (it answers through the
            // cached code and hash).
            assert_eq!(fast_equal, invariants[i].is_isomorphic_to(&invariants[j]));
            if fast_equal {
                assert_eq!(invariants[i].code_hash(), invariants[j].code_hash());
            }
        }
    }
}

#[test]
fn seeded_workloads_partition_identically() {
    let mut invariants = Vec::new();
    for seed in [1u64, 7, 42] {
        let scale = Scale::tiny();
        invariants.push(top(&sequoia_landcover(scale, seed)));
        invariants.push(top(&sequoia_hydro(scale, seed)));
        invariants.push(top(&ign_city(scale, seed)));
    }
    invariants.push(top(&figure1()));
    invariants.push(top(&nested_rings(3, 2)));
    invariants.push(top(&nested_rings(2, 3)));
    invariants.push(top(&scattered_islands(5)));
    assert_same_partition(&invariants, "seeded workloads");
}

#[test]
fn transformed_copies_stay_in_the_same_class() {
    use topo_core::spatial::transform::AffineMap;
    let base = figure1();
    let mut invariants = vec![top(&base)];
    for map in
        [AffineMap::translation(313, -77), AffineMap::rotation90(), AffineMap::reflection_x()]
    {
        invariants.push(top(&map.apply_instance(&base)));
    }
    // All transformed copies are topologically equivalent; both code paths
    // must put them into a single class.
    assert_same_partition(&invariants, "transformed figure1");
    let reference = &invariants[0];
    for other in &invariants[1..] {
        assert!(reference.is_isomorphic_to(other));
    }
}

#[test]
fn cached_code_never_goes_stale() {
    let invariant = top(&nested_rings(3, 2));
    // Request the code first, then exercise every other accessor family, then
    // request it again: the invariant is immutable, so the cached code (and
    // the allocation holding it) must be byte-identical.
    let before = invariant.canonical_code().clone();
    let before_ptr = invariant.canonical_code() as *const _;
    let _ = invariant.to_structure();
    let _ = invariant.to_structure_successor_only();
    for f in 0..invariant.face_count() {
        let _ = invariant.boundary_components(f);
        let _ = invariant.face_edges(f);
        let _ = invariant.face_vertices(f);
    }
    for v in 0..invariant.vertex_count() {
        let _ = invariant.cone(v);
    }
    for c in 0..invariant.components().len() {
        let _ = invariant.owned_faces(c);
    }
    assert_eq!(&before, invariant.canonical_code());
    // Pointer equality proves the second call was a cache hit, not a
    // recomputation that happened to produce the same value.
    assert!(std::ptr::eq(before_ptr, invariant.canonical_code()));
    assert_eq!(before.code_hash(), invariant.code_hash());

    // A fresh invariant of the same instance, asked in the opposite order
    // (other accessors first, code last), agrees.
    let fresh = top(&nested_rings(3, 2));
    let _ = fresh.to_structure();
    assert_eq!(fresh.canonical_code(), &before);

    // Cloning carries the cache; the clone answers without recomputation and
    // agrees with the original.
    let cloned = invariant.clone();
    assert_eq!(cloned.canonical_code(), invariant.canonical_code());
    assert_eq!(cloned.code_hash(), invariant.code_hash());
}

#[test]
fn canonical_cell_order_realises_the_code() {
    for instance in [figure1(), nested_rings(2, 2), scattered_islands(4)] {
        let invariant = top(&instance);
        let order = invariant.canonical_cell_order();
        assert_eq!(order.len(), invariant.cell_count());
        let distinct: std::collections::HashSet<_> = order.iter().collect();
        assert_eq!(distinct.len(), invariant.cell_count(), "canonical order is a permutation");
        assert_eq!(
            *order.last().unwrap(),
            (topo_core::invariant::CellKind::Face, invariant.exterior_face())
        );
    }
}

/// `ign_city`-style giant single-skeleton-component invariants at the
/// hundreds-of-cells scale: the lazy streamed Lemma 3.1 sweep and the frozen
/// PR 2 oracle must induce the same isomorphism-class partition, and
/// topologically equivalent copies must realise byte-identical winning codes
/// (rotation and reflection also swap the roles of the two orientations, so
/// this exercises the orientation minimum).
#[test]
fn large_single_component_partition_matches_naive() {
    use topo_core::spatial::transform::AffineMap;
    let base = ign_city(Scale { grid: 4 }, 7);
    let invariants = vec![
        top(&base),
        top(&ign_city(Scale { grid: 4 }, 13)),
        top(&ign_city(Scale { grid: 5 }, 7)),
        top(&AffineMap::rotation90().apply_instance(&base)),
        top(&AffineMap::reflection_x().apply_instance(&base)),
    ];
    let giant = topo_core::sweep_stats(&invariants[0]).giant_skeleton_cells;
    assert!(giant >= 150, "expected a giant component, got {giant} skeleton cells");
    assert_same_partition(&invariants, "large single-component cities");
    // The transformed copies are not merely in the same class: they realise
    // the same winning code, token for token.
    assert_eq!(invariants[0].canonical_code(), invariants[3].canonical_code());
    assert_eq!(invariants[0].canonical_code(), invariants[4].canonical_code());
}

/// At a scale where the reference oracle is intractable, the lazy sweep must
/// still put every transformed copy of a giant-component city into the same
/// class with an identical code (self-consistency of the streamed format and
/// the refined start filter across cell renumberings and orientation swaps).
#[test]
fn giant_component_transforms_realise_identical_codes() {
    use topo_core::spatial::transform::AffineMap;
    let base = ign_city(Scale { grid: 8 }, 7);
    let reference = top(&base);
    assert!(topo_core::sweep_stats(&reference).giant_skeleton_cells >= 500);
    for map in
        [AffineMap::translation(999, -41), AffineMap::rotation90(), AffineMap::reflection_x()]
    {
        let copy = top(&map.apply_instance(&base));
        assert!(reference.is_isomorphic_to(&copy));
        assert_eq!(reference.canonical_code(), copy.canonical_code());
        assert_eq!(reference.code_hash(), copy.code_hash());
    }
}

/// A random street-grid instance: `h` horizontal and `v` vertical full-width
/// streets (one region), an optional overlapping district rectangle (second
/// region) and a few antenna stubs — a single giant skeleton component in the
/// spirit of `ign_city`, at a scale where the reference oracle is still
/// tractable.
fn street_grid() -> impl Strategy<Value = SpatialInstance> {
    (3usize..6, 3usize..6, 0u8..255, 0usize..3).prop_map(|(h, v, antennas, district)| {
        let step = 100i64;
        let mut streets = Region::new();
        let width = (v as i64 - 1) * step;
        let height = (h as i64 - 1) * step;
        for i in 0..h as i64 {
            streets.add_polyline(vec![
                Point::from_ints(0, i * step),
                Point::from_ints(width.max(step), i * step),
            ]);
        }
        for j in 0..v as i64 {
            streets.add_polyline(vec![
                Point::from_ints(j * step, 0),
                Point::from_ints(j * step, height.max(step)),
            ]);
        }
        // Antenna stubs off the west border, one per set bit, at distinct
        // crossings: they create degree-3 boundary vertices that the colour
        // refinement must keep apart from the rest.
        for i in 0..h.min(8) {
            if antennas & (1 << i) != 0 {
                streets.add_polyline(vec![
                    Point::from_ints(0, i as i64 * step),
                    Point::from_ints(-60, i as i64 * step - 40),
                ]);
            }
        }
        let mut b = Region::new();
        if district > 0 {
            let d = district as i64;
            b.add_ring(vec![
                Point::from_ints(50, 50),
                Point::from_ints(50 + d * step, 50),
                Point::from_ints(50 + d * step, 50 + d * step),
                Point::from_ints(50, 50 + d * step),
            ]);
        }
        SpatialInstance::from_regions([("R", streets), ("B", b)])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random giant-single-component street grids: the lazy sweep and the
    /// reference oracle partition identically, and a translated copy realises
    /// the identical winning code.
    #[test]
    fn street_grids_partition_identically(
        first in street_grid(),
        second in street_grid(),
        dx in -400i64..400,
        dy in -400i64..400,
    ) {
        let moved = topo_core::spatial::transform::AffineMap::translation(dx, dy)
            .apply_instance(&first);
        let invariants = [top(&first), top(&second), top(&moved)];
        let naive: Vec<String> = invariants.iter().map(canonical_code_naive).collect();
        for i in 0..invariants.len() {
            for j in i..invariants.len() {
                prop_assert_eq!(
                    invariants[i].canonical_code() == invariants[j].canonical_code(),
                    naive[i] == naive[j],
                    "partition diverged between {} and {}", i, j
                );
            }
        }
        prop_assert!(invariants[0].is_isomorphic_to(&invariants[2]));
        prop_assert_eq!(invariants[0].canonical_code(), invariants[2].canonical_code());
    }
}

/// A small random instance of rectangles and isolated points (same shape as
/// the structural property tests, including crossing and nested boundaries).
fn small_instance() -> impl Strategy<Value = SpatialInstance> {
    let rect = (0i64..6, 0i64..6, 1i64..4, 1i64..4)
        .prop_map(|(x, y, w, h)| (x * 100, y * 100, x * 100 + w * 60, y * 100 + h * 60));
    let rects = proptest::collection::vec(rect, 1..4);
    let points = proptest::collection::vec((0i64..40, 0i64..40), 0..3);
    (rects, points).prop_map(|(rects, points)| {
        let mut a = Region::new();
        let mut b = Region::new();
        for (i, (x0, y0, x1, y1)) in rects.into_iter().enumerate() {
            let ring = vec![
                Point::from_ints(x0, y0),
                Point::from_ints(x1, y0),
                Point::from_ints(x1, y1),
                Point::from_ints(x0, y1),
            ];
            if i % 2 == 0 {
                a.add_ring(ring);
            } else {
                b.add_ring(ring);
            }
        }
        for (x, y) in points {
            b.add_point(Point::from_ints(x, y));
        }
        SpatialInstance::from_regions([("A", a), ("B", b)])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On random instance pairs, the memoised/pruned codes decide equality
    /// exactly as the frozen reference codes do.
    #[test]
    fn random_pairs_partition_identically(
        first in small_instance(),
        second in small_instance(),
        dx in -500i64..500,
        dy in -500i64..500,
    ) {
        let moved = topo_core::spatial::transform::AffineMap::translation(dx, dy)
            .apply_instance(&first);
        let invariants = [top(&first), top(&second), top(&moved)];
        let naive: Vec<String> = invariants.iter().map(canonical_code_naive).collect();
        for i in 0..invariants.len() {
            for j in i..invariants.len() {
                prop_assert_eq!(
                    invariants[i].canonical_code() == invariants[j].canonical_code(),
                    naive[i] == naive[j],
                    "partition diverged between {} and {}", i, j
                );
            }
        }
        // The translated copy is always equivalent to the original.
        prop_assert!(invariants[0].is_isomorphic_to(&invariants[2]));
    }
}
