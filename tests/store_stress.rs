//! Multi-threaded stress over the `InvariantStore`: N writer threads
//! ingesting interleaved with M reader threads querying (std scoped
//! threads, no extra dependencies). Afterwards the store must show no lost
//! updates, a class partition identical to the single-threaded oracle,
//! bit-identical answers before/after eviction-triggering pressure, and
//! memo counters proving that repeated queries were served from the memo.
//!
//! CI runs this suite both single- and multi-threaded
//! (`--test-threads=1` and the parallel default), so the store is exercised
//! under an oversubscribed scheduler as well as an idle one.

use topo_core::{evaluate_on_invariant, isomorphism_classes, InvariantStore, StoreConfig};

mod common;
use common::{stress_batch, stress_query_mix as query_mix};

const WRITERS: usize = 4;
const READERS: usize = 3;

/// N writers ingest the batch while M readers hammer queries over whatever
/// prefix is visible; afterwards the store equals the single-threaded
/// oracle in every observable.
#[test]
fn concurrent_ingest_and_query_loses_no_updates() {
    let invariants = stress_batch();
    let queries = query_mix();
    let store = InvariantStore::default();
    // Seed a small prefix so readers have instances from the start.
    let prefix = 4;
    for invariant in &invariants[..prefix] {
        store.ingest_invariant(invariant.clone());
    }

    let total = invariants.len();
    let chunk_size = (total - prefix).div_ceil(WRITERS);
    // `id_of[k]` = the instance id writer threads obtained for batch index k.
    let mut id_of: Vec<(usize, usize)> = (0..prefix).map(|i| (i, i)).collect();
    std::thread::scope(|s| {
        let mut writers = Vec::new();
        for (w, chunk) in invariants[prefix..].chunks(chunk_size).enumerate() {
            let store = &store;
            writers.push(s.spawn(move || {
                let start = prefix + w * chunk_size;
                chunk
                    .iter()
                    .enumerate()
                    .map(|(k, invariant)| (start + k, store.ingest_invariant(invariant.clone())))
                    .collect::<Vec<(usize, usize)>>()
            }));
        }
        for r in 0..READERS {
            let (store, queries, invariants) = (&store, &queries, &invariants);
            s.spawn(move || loop {
                let visible = store.instance_count();
                for step in 0..visible {
                    // Stagger readers so they touch different keys at the
                    // same moment.
                    let id = (step + r * 11) % visible;
                    for q in 0..queries.len() {
                        let answer = store.query(id, &queries[(q + r) % queries.len()]);
                        assert!(answer.is_some(), "visible instance {id} must be queryable");
                    }
                }
                if visible == invariants.len() {
                    break;
                }
            });
        }
        for writer in writers {
            id_of.extend(writer.join().expect("writer thread"));
        }
    });

    // No lost updates: every ingest got a distinct id and they are dense.
    assert_eq!(store.instance_count(), total);
    let mut ids: Vec<usize> = id_of.iter().map(|&(_, id)| id).collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..total).collect::<Vec<_>>());

    // The concurrent partition equals the single-threaded oracle partition
    // (as a set of classes over batch indices; ingest interleaving only
    // permutes ids within it).
    let oracle = normalised(isomorphism_classes(&invariants));
    let mut batch_index_of = vec![0usize; total];
    for &(batch, id) in &id_of {
        batch_index_of[id] = batch;
    }
    let concurrent = normalised(
        store
            .classes()
            .into_iter()
            .map(|class| class.into_iter().map(|id| batch_index_of[id]).collect())
            .collect(),
    );
    assert_eq!(concurrent, oracle, "concurrent ingest changed the class partition");

    // Every instance answers exactly like the per-instance oracle.
    for &(batch, id) in &id_of {
        for query in &queries {
            assert_eq!(
                store.query(id, query),
                Some(evaluate_on_invariant(query, &invariants[batch])),
                "instance {id} diverged from its oracle on {query:?}"
            );
        }
    }
    // And the representatives are pairwise non-isomorphic (no class split).
    for c1 in 0..store.class_count() {
        for c2 in (c1 + 1)..store.class_count() {
            let (r1, r2) =
                (store.class_representative(c1).unwrap(), store.class_representative(c2).unwrap());
            assert!(!r1.is_isomorphic_to(&r2), "classes {c1} and {c2} should have merged");
        }
    }
}

/// Repeated queries must be served by the memo: under concurrent readers
/// the only misses are first-touches (plus the bounded both-threads-missed
/// race), and a later single-threaded sweep adds no miss at all.
#[test]
fn repeated_queries_hit_the_memo() {
    let invariants = stress_batch();
    let queries = query_mix();
    let store = InvariantStore::default();
    for invariant in &invariants {
        store.ingest_invariant(invariant.clone());
    }
    let keys = store.class_count() as u64 * queries.len() as u64;

    let rounds = 4;
    std::thread::scope(|s| {
        for r in 0..READERS {
            let (store, queries, invariants) = (&store, &queries, &invariants);
            s.spawn(move || {
                for _ in 0..rounds {
                    for id in 0..invariants.len() {
                        for query in queries {
                            let id = (id + r * 7) % invariants.len();
                            assert!(store.query(id, query).is_some());
                        }
                    }
                }
            });
        }
    });
    let stats = store.stats();
    let issued = (READERS * rounds * invariants.len() * queries.len()) as u64;
    assert_eq!(stats.memo_hits + stats.memo_misses, issued, "every query is counted");
    // Worst case each of the M readers misses each key once before the
    // first insert lands; everything else must be a hit.
    assert!(
        stats.memo_misses <= keys * READERS as u64,
        "more misses than first-touch races allow: {stats:?}"
    );
    assert!(stats.memo_hits >= issued - keys * READERS as u64);
    assert_eq!(stats.memo_evictions, 0, "ample capacity must not evict");

    // With every key resident, a full sweep is hits only.
    let before = store.stats();
    for id in 0..invariants.len() {
        for query in &queries {
            store.query(id, query);
        }
    }
    let after = store.stats();
    assert_eq!(after.memo_misses, before.memo_misses, "a warm sweep must not miss");
    assert_eq!(after.memo_hits - before.memo_hits, (invariants.len() * queries.len()) as u64);
}

/// Eviction-triggering pressure (a memo far smaller than the key space)
/// must never change an answer, single- or multi-threaded.
#[test]
fn answers_are_stable_under_eviction_pressure() {
    let invariants = stress_batch();
    let queries = query_mix();
    let store = InvariantStore::new(StoreConfig {
        memo_capacity: 4,
        memo_shards: 2,
        ..StoreConfig::default()
    });
    for invariant in &invariants {
        store.ingest_invariant(invariant.clone());
    }
    // The oracle sheet, computed once before any pressure.
    let expected: Vec<Vec<bool>> = invariants
        .iter()
        .map(|invariant| queries.iter().map(|q| evaluate_on_invariant(q, invariant)).collect())
        .collect();

    std::thread::scope(|s| {
        for r in 0..READERS + 1 {
            let (store, queries, expected, invariants) = (&store, &queries, &expected, &invariants);
            s.spawn(move || {
                for round in 0..3 {
                    for id in 0..invariants.len() {
                        let id = (id + r * 13 + round) % invariants.len();
                        for (q, query) in queries.iter().enumerate() {
                            assert_eq!(
                                store.query(id, query),
                                Some(expected[id][q]),
                                "answer drifted under eviction pressure"
                            );
                        }
                    }
                }
            });
        }
    });
    let stats = store.stats();
    assert!(stats.memo_evictions > 0, "the pressure test must actually evict: {stats:?}");
    assert!(stats.memo_entries <= 4, "capacity bound violated: {stats:?}");

    // After the storm: a fresh sweep still matches the oracle sheet.
    for (id, row) in expected.iter().enumerate() {
        for (q, query) in queries.iter().enumerate() {
            assert_eq!(store.query(id, query), Some(row[q]));
        }
    }
}

/// Concurrent writers over a *persistent* store: the WAL written under full
/// write contention must recover — on a fresh store over the same medium —
/// into exactly the observable state the live store ended with.
#[test]
fn concurrent_persistent_ingest_recovers_identically() {
    let invariants = stress_batch();
    let queries = query_mix();
    let backend = topo_core::MemoryBackend::new();
    let store =
        InvariantStore::open(StoreConfig::default(), backend.clone()).expect("open empty store");

    let chunk_size = invariants.len().div_ceil(WRITERS);
    std::thread::scope(|s| {
        for chunk in invariants.chunks(chunk_size) {
            let store = &store;
            s.spawn(move || {
                for invariant in chunk {
                    store.ingest_invariant(invariant.clone());
                }
            });
        }
    });
    // A couple of removals (one of them collects a singleton class) so the
    // recovered WAL contains the full operation vocabulary.
    assert!(store.remove_instance(0));
    assert!(store.remove_instance(7));
    assert_eq!(store.stats().wal_errors, 0, "the in-memory backend must not fail");

    let live_partition = store.classes();
    let live_answers: Vec<Vec<Option<bool>>> = (0..invariants.len())
        .map(|id| queries.iter().map(|q| store.query(id, q)).collect())
        .collect();
    drop(store);

    let recovered = InvariantStore::open(StoreConfig::default(), backend).expect("recover");
    assert_eq!(recovered.classes(), live_partition, "recovery changed the class partition");
    for (id, row) in live_answers.iter().enumerate() {
        for (q, query) in queries.iter().enumerate() {
            assert_eq!(recovered.query(id, query), row[q], "instance {id} on {query:?}");
        }
    }
}

/// A panicking writer must not wedge the store: after every table lock and
/// every memo shard lock has been poisoned, concurrent readers and writers
/// still complete with oracle-correct answers, and the recoveries are
/// visible in the stats.
#[test]
fn poisoned_locks_degrade_without_wedging() {
    let invariants = stress_batch();
    let queries = query_mix();
    let store = InvariantStore::default();
    let half = invariants.len() / 2;
    for invariant in &invariants[..half] {
        store.ingest_invariant(invariant.clone());
    }
    store.poison_classes_lock();
    store.poison_memo_locks();

    std::thread::scope(|s| {
        let store = &store;
        let writer = s.spawn(move || {
            for invariant in &invariants[half..] {
                store.ingest_invariant(invariant.clone());
            }
        });
        for r in 0..READERS {
            let queries = &queries;
            s.spawn(move || {
                for round in 0..3 {
                    let visible = store.instance_count();
                    for id in 0..visible {
                        let id = (id + r * 5 + round) % visible;
                        for query in queries {
                            assert!(
                                store.query(id, query).is_some(),
                                "a poisoned lock must not eat instance {id}"
                            );
                        }
                    }
                }
            });
        }
        writer.join().expect("writer survived the poison");
    });

    let stats = store.stats();
    assert!(stats.lock_recoveries > 0, "the poison must have been recovered: {stats:?}");
    assert_eq!(stats.instances, stress_batch().len(), "no ingest lost to poisoning");
    for (id, invariant) in stress_batch().iter().enumerate() {
        for query in &queries {
            assert_eq!(store.query(id, query), Some(evaluate_on_invariant(query, invariant)));
        }
    }
}

/// With a lock budget configured, readers must make progress even while the
/// entire memo is frozen under write locks — falling back to un-memoised
/// evaluation — and return to normal memoisation once the memo thaws.
#[test]
fn frozen_memo_falls_back_within_budget() {
    let invariants = stress_batch();
    let queries = query_mix();
    let store =
        InvariantStore::new(StoreConfig { memo_lock_budget: Some(16), ..StoreConfig::default() });
    for invariant in &invariants {
        store.ingest_invariant(invariant.clone());
    }
    let expected: Vec<Vec<bool>> = invariants
        .iter()
        .map(|invariant| queries.iter().map(|q| evaluate_on_invariant(q, invariant)).collect())
        .collect();

    store.with_memo_frozen(|| {
        std::thread::scope(|s| {
            for r in 0..READERS {
                let (store, queries, expected) = (&store, &queries, &expected);
                s.spawn(move || {
                    for step in 0..expected.len() {
                        let id = (step + r * 3) % expected.len();
                        for (q, query) in queries.iter().enumerate() {
                            assert_eq!(
                                store.query(id, query),
                                Some(expected[id][q]),
                                "frozen-memo fallback changed an answer"
                            );
                        }
                    }
                });
            }
        });
    });
    let frozen = store.stats();
    assert!(frozen.fallback_evals > 0, "the freeze must have forced fallbacks: {frozen:?}");
    assert_eq!(
        frozen.memo_hits + frozen.memo_misses,
        (READERS * invariants.len() * queries.len()) as u64,
        "fallback queries still count"
    );

    // Thawed: the memo serves hits again.
    for (id, row) in expected.iter().enumerate() {
        for (q, query) in queries.iter().enumerate() {
            assert_eq!(store.query(id, query), Some(row[q]));
        }
    }
    for (id, row) in expected.iter().enumerate() {
        for (q, query) in queries.iter().enumerate() {
            assert_eq!(store.query(id, query), Some(row[q]));
        }
    }
    assert!(store.stats().memo_hits > frozen.memo_hits, "the thawed memo must serve hits");
}

/// Normalises a partition for set comparison: members sorted within
/// classes, classes sorted by first member.
fn normalised(mut classes: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
    for class in &mut classes {
        class.sort_unstable();
    }
    classes.sort();
    classes
}
