//! Reproduction of Figures 1 and 2: the running instance and its
//! connected-component tree.

use topo_core::invariant::CellKind;

#[test]
fn figure1_component_tree_shape() {
    let instance = topo_datagen::figure1();
    let invariant = topo_core::top(&instance);

    // Seven connected components, as in Figure 1 (c1 … c7).
    assert_eq!(invariant.components().len(), 7);

    // Depth distribution of the tree in Figure 2: two components hang off the
    // exterior face (c1, c2), two are one level deeper (c3, c7), three are two
    // levels deep (c4, c5, c6).
    let mut depth_histogram = std::collections::BTreeMap::new();
    for component in invariant.components() {
        *depth_histogram.entry(component.depth).or_insert(0usize) += 1;
    }
    assert_eq!(depth_histogram.get(&0), Some(&2));
    assert_eq!(depth_histogram.get(&1), Some(&2));
    assert_eq!(depth_histogram.get(&2), Some(&3));

    // One component is an isolated vertex (the point feature c6).
    assert_eq!(
        invariant
            .components()
            .iter()
            .filter(|c| c.edges.is_empty() && c.vertices.len() == 1)
            .count(),
        1
    );

    // The face of c1 that hosts nested components has several connected
    // components on its boundary (the paper's f2 touches c1, c3 and c7).
    let busiest_face = (0..invariant.face_count())
        .map(|f| {
            let mut components = std::collections::HashSet::new();
            for e in invariant.face_edges(f) {
                components.insert(invariant.component_of_edge(e));
            }
            for v in invariant.face_vertices(f) {
                components.insert(invariant.component_of_vertex(v));
            }
            components.len()
        })
        .max()
        .unwrap();
    assert!(busiest_face >= 3);
}

#[test]
fn figure1_membership_relations_are_consistent() {
    let instance = topo_datagen::figure1();
    let invariant = topo_core::top(&instance);
    // Every face in a region's interior has all its boundary edges in the
    // region (regions are closed).
    for f in 0..invariant.face_count() {
        for region in instance.schema().ids() {
            if invariant.cell_in_region(CellKind::Face, f, region) {
                for e in invariant.face_edges(f) {
                    assert!(invariant.cell_in_region(CellKind::Edge, e, region));
                }
            }
        }
    }
}
