//! Property-based tests over randomly generated instances: structural
//! invariants of `top(I)` that must hold for every input.

use proptest::prelude::*;
use topo_core::invariant::CellKind;
use topo_core::{Region, SpatialInstance};
use topo_geometry::Point;

/// Strategy: a small instance of one or two regions made of disjoint or nested
/// axis-aligned rectangles and isolated points placed on a coarse lattice.
fn small_instance() -> impl Strategy<Value = SpatialInstance> {
    let rect = (0i64..6, 0i64..6, 1i64..4, 1i64..4)
        .prop_map(|(x, y, w, h)| (x * 100, y * 100, x * 100 + w * 60, y * 100 + h * 60));
    let rects = proptest::collection::vec(rect, 1..5);
    let points = proptest::collection::vec((0i64..40, 0i64..40), 0..3);
    (rects, points).prop_map(|(rects, points)| {
        let mut a = Region::new();
        let mut b = Region::new();
        for (i, (x0, y0, x1, y1)) in rects.into_iter().enumerate() {
            // Small per-index offsets keep boundary segments of the same
            // region from ever being collinear-coincident (which would make
            // the even–odd 2-D semantics disagree with the closed-skeleton
            // convenience semantics of `Region::contains_point`).
            let (dx, dy) = (7 * i as i64, 11 * i as i64);
            let (x0, y0, x1, y1) = (x0 + dx, y0 + dy, x1 + dx, y1 + dy);
            let ring = vec![
                Point::from_ints(x0, y0),
                Point::from_ints(x1, y0),
                Point::from_ints(x1, y1),
                Point::from_ints(x0, y1),
            ];
            if i % 2 == 0 {
                a.add_ring(ring);
            } else {
                b.add_ring(ring);
            }
        }
        for (x, y) in points {
            b.add_point(Point::from_ints(x * 17 + 3, y * 13 + 1));
        }
        SpatialInstance::from_regions([("A", a), ("B", b)])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The invariant never has removable structure left: no degree-2 vertex
    /// with a homogeneous neighbourhood, no edge with identical memberships on
    /// both sides and itself.
    #[test]
    fn reduction_is_maximal(instance in small_instance()) {
        let invariant = topo_core::top(&instance);
        let regions = instance.schema().len();
        for e in 0..invariant.edge_count() {
            let (fa, fb) = invariant.edge_faces(e);
            let homogeneous = (0..regions).all(|r| {
                let edge_in = invariant.cell_in_region(CellKind::Edge, e, r);
                edge_in == invariant.cell_in_region(CellKind::Face, fa, r)
                    && edge_in == invariant.cell_in_region(CellKind::Face, fb, r)
            });
            prop_assert!(!homogeneous, "edge {e} should have been removed");
        }
    }

    /// Membership is closed: the closure of a cell in a region stays in the
    /// region (regions are closed sets).
    #[test]
    fn membership_is_downward_closed(instance in small_instance()) {
        let invariant = topo_core::top(&instance);
        for r in instance.schema().ids() {
            for f in 0..invariant.face_count() {
                if invariant.cell_in_region(CellKind::Face, f, r) {
                    for e in invariant.face_edges(f) {
                        prop_assert!(invariant.cell_in_region(CellKind::Edge, e, r));
                    }
                    for v in invariant.face_vertices(f) {
                        prop_assert!(invariant.cell_in_region(CellKind::Vertex, v, r));
                    }
                }
            }
            for e in 0..invariant.edge_count() {
                if invariant.cell_in_region(CellKind::Edge, e, r) {
                    if let Some((a, b)) = invariant.edge_endpoints(e) {
                        prop_assert!(invariant.cell_in_region(CellKind::Vertex, a, r));
                        prop_assert!(invariant.cell_in_region(CellKind::Vertex, b, r));
                    }
                }
            }
        }
    }

    /// Translating the instance by a random vector never changes the
    /// invariant's canonical code.
    #[test]
    fn canonical_code_is_translation_invariant(
        instance in small_instance(),
        dx in -1000i64..1000,
        dy in -1000i64..1000,
    ) {
        let invariant = topo_core::top(&instance);
        let moved = topo_core::spatial::transform::AffineMap::translation(dx, dy)
            .apply_instance(&instance);
        let moved_invariant = topo_core::top(&moved);
        prop_assert_eq!(invariant.canonical_code(), moved_invariant.canonical_code());
    }

    /// Direct and invariant-side evaluation agree on the core queries.
    #[test]
    fn query_strategies_agree(instance in small_instance()) {
        use topo_core::TopologicalQuery as Q;
        let invariant = topo_core::top(&instance);
        for query in [
            Q::Intersects(0, 1),
            Q::Contains(0, 1),
            Q::InteriorsOverlap(0, 1),
            Q::IsConnected(0),
            Q::HasHole(0),
            Q::ComponentCountEven(1),
        ] {
            prop_assert_eq!(
                topo_core::evaluate_direct(&query, &instance),
                topo_core::evaluate_on_invariant(&query, &invariant)
            );
        }
    }
}
