//! The optimised `top(I)` pipeline must be observationally identical to the
//! frozen pre-optimisation reference path (`top_naive`): same vertex / edge /
//! face counts and the same canonical code, on the seeded cartographic
//! workloads and on randomly generated instances.
//!
//! `top_naive` runs the seed arrangement builder under slow-mode rational
//! arithmetic (see `topo-arrangement`'s `naive` module); these tests are the
//! guard-rail that keeps every fast path honest. The perf harness
//! (`bench_runner`, `BENCH_3.json`) measures the speedup between the two
//! paths that these tests prove equivalent; `canonical_equivalence.rs` does
//! the same job for the canonicalisation reference path.

use proptest::prelude::*;
use topo_core::{top, top_naive, Region, SpatialInstance};
use topo_datagen::{
    figure1, ign_city, nested_rings, scattered_islands, sequoia_hydro, sequoia_landcover, Scale,
};
use topo_geometry::Point;

fn assert_pipelines_agree(instance: &SpatialInstance, label: &str) {
    let fast = top(instance);
    let slow = top_naive(instance);
    assert_eq!(fast.vertex_count(), slow.vertex_count(), "vertex count diverged on {label}");
    assert_eq!(fast.edge_count(), slow.edge_count(), "edge count diverged on {label}");
    assert_eq!(fast.face_count(), slow.face_count(), "face count diverged on {label}");
    assert_eq!(fast.canonical_code(), slow.canonical_code(), "canonical code diverged on {label}");
}

#[test]
fn running_examples_agree() {
    assert_pipelines_agree(&figure1(), "figure1");
    assert_pipelines_agree(&nested_rings(3, 2), "nested_rings(3, 2)");
    assert_pipelines_agree(&scattered_islands(5), "scattered_islands(5)");
}

#[test]
fn seeded_cartographic_workloads_agree() {
    for seed in [1u64, 7, 42] {
        let scale = Scale::tiny();
        assert_pipelines_agree(
            &sequoia_landcover(scale, seed),
            &format!("sequoia_landcover(tiny, {seed})"),
        );
        assert_pipelines_agree(
            &sequoia_hydro(scale, seed),
            &format!("sequoia_hydro(tiny, {seed})"),
        );
        assert_pipelines_agree(&ign_city(scale, seed), &format!("ign_city(tiny, {seed})"));
    }
}

/// A small random instance of rectangles and isolated points (same shape as
/// the structural property tests, including crossing and nested boundaries).
fn small_instance() -> impl Strategy<Value = SpatialInstance> {
    let rect = (0i64..6, 0i64..6, 1i64..4, 1i64..4)
        .prop_map(|(x, y, w, h)| (x * 100, y * 100, x * 100 + w * 60, y * 100 + h * 60));
    let rects = proptest::collection::vec(rect, 1..5);
    let points = proptest::collection::vec((0i64..40, 0i64..40), 0..3);
    (rects, points).prop_map(|(rects, points)| {
        let mut a = Region::new();
        let mut b = Region::new();
        for (i, (x0, y0, x1, y1)) in rects.into_iter().enumerate() {
            let (dx, dy) = (7 * i as i64, 11 * i as i64);
            let (x0, y0, x1, y1) = (x0 + dx, y0 + dy, x1 + dx, y1 + dy);
            let ring = vec![
                Point::from_ints(x0, y0),
                Point::from_ints(x1, y0),
                Point::from_ints(x1, y1),
                Point::from_ints(x0, y1),
            ];
            if i % 2 == 0 {
                a.add_ring(ring);
            } else {
                b.add_ring(ring);
            }
        }
        for (x, y) in points {
            b.add_point(Point::from_ints(x * 17 + 3, y * 13 + 1));
        }
        SpatialInstance::from_regions([("A", a), ("B", b)])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_instances_agree(instance in small_instance()) {
        assert_pipelines_agree(&instance, "random instance");
    }
}
