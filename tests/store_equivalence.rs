//! The `InvariantStore` must be observationally equivalent to running the
//! one-shot pipeline per instance: every query answer bit-identical to
//! `evaluate_on_invariant` and `evaluate_on_classes`, and its class
//! partition equal to `isomorphism_classes` — on seeded workloads at
//! multiple datagen scales, including deliberately transformed duplicate
//! instances that must land in one class. The partition is additionally
//! cross-checked against the frozen `naive-reference` codes
//! (`canonical_code_naive`), the same oracle discipline as PRs 2–5.

use std::sync::Arc;
use topo_core::spatial::transform::AffineMap;
use topo_core::{
    canonical_code_naive, evaluate_on_classes, evaluate_on_invariant, isomorphism_classes, top,
    InvariantStore, MemoryBackend, StoreConfig, TopologicalInvariant, TopologicalQuery,
};
use topo_datagen::figure1;

mod common;
use common::{equivalence_query_mix as query_mix, mixed_invariant_workload as workload};

/// Ingests every invariant (single-threaded, so ids follow slice order) and
/// checks the full observable state against the oracles. The frozen
/// reference canonicalisation is super-quadratic, so `check_naive` is only
/// set at the small scale; the larger scales rely on the fast-path oracles,
/// which `tests/canonical_equivalence.rs` proves equivalent to the frozen
/// codes in their own right.
fn assert_store_matches_oracles(
    invariants: &[Arc<TopologicalInvariant>],
    label: &str,
    check_naive: bool,
) {
    let store = InvariantStore::default();
    for invariant in invariants {
        store.ingest_invariant(invariant.clone());
    }
    assert_eq!(store.instance_count(), invariants.len(), "{label}: lost ingest");

    // Class partition: identical to `isomorphism_classes`, called both on
    // the Arc slice (the new zero-copy shape) and on the legacy `&[&T]`
    // shape, which must agree with each other.
    let classes = store.classes();
    assert_eq!(classes, isomorphism_classes(invariants), "{label}: partition diverged");
    let refs: Vec<&TopologicalInvariant> = invariants.iter().map(|i| i.as_ref()).collect();
    assert_eq!(classes, isomorphism_classes(&refs), "{label}: Arc/ref shapes disagree");

    // The frozen reference codes induce the same partition.
    if check_naive {
        let naive: Vec<String> = invariants.iter().map(|i| canonical_code_naive(i)).collect();
        for i in 0..invariants.len() {
            for j in 0..invariants.len() {
                let same_class = classes.iter().any(|c| c.contains(&i) && c.contains(&j));
                assert_eq!(
                    same_class,
                    naive[i] == naive[j],
                    "{label}: store partition diverged from the reference codes at {i} / {j}"
                );
            }
        }
    }

    // Dedup accounting: every instance beyond one per class was a hit.
    let stats = store.stats();
    assert_eq!(stats.instances, invariants.len());
    assert_eq!(stats.classes, classes.len());
    assert_eq!(stats.dedup_hits as usize, invariants.len() - classes.len());
    assert_eq!(stats.hash_collisions, 0, "{label}: unexpected 64-bit digest collision");

    // Answers: per-instance store queries, the bulk `query_all`, the class
    // oracle and the per-instance oracle all bit-identical.
    for query in query_mix() {
        let expected: Vec<bool> =
            invariants.iter().map(|i| evaluate_on_invariant(&query, i)).collect();
        assert_eq!(
            evaluate_on_classes(&query, invariants),
            expected,
            "{label}: evaluate_on_classes diverged on {query:?}"
        );
        assert_eq!(store.query_all(&query), expected, "{label}: query_all diverged on {query:?}");
        for (i, &answer) in expected.iter().enumerate() {
            assert_eq!(store.query(i, &query), Some(answer), "{label}: instance {i} on {query:?}");
        }
        // Class-level queries agree with every member's answer.
        for (c, class) in classes.iter().enumerate() {
            for &member in class {
                assert_eq!(store.query_class(c, &query), Some(expected[member]));
            }
        }
    }
}

#[test]
fn store_matches_oracles_at_small_scale() {
    assert_store_matches_oracles(&workload(3), "grid 3", true);
}

#[test]
fn store_matches_oracles_at_medium_scale() {
    assert_store_matches_oracles(&workload(5), "grid 5", false);
}

#[test]
fn transformed_duplicates_land_in_one_class() {
    let base = figure1();
    let copies = [
        AffineMap::translation(313, -77).apply_instance(&base),
        AffineMap::rotation90().apply_instance(&base),
        AffineMap::reflection_x().apply_instance(&base),
    ];
    let store = InvariantStore::default();
    let first = store.ingest(&base);
    for copy in &copies {
        store.ingest(copy);
    }
    assert_eq!(store.class_count(), 1, "homeomorphic images must share the class");
    assert_eq!(store.classes(), vec![vec![0, 1, 2, 3]]);

    // One evaluation serves the whole class: the first member misses, every
    // other member is a memo hit with the identical answer.
    let query = TopologicalQuery::HasHole(0);
    let expected = evaluate_on_invariant(&query, &top(&base));
    for id in 0..4 {
        assert_eq!(store.query(id, &query), Some(expected));
    }
    let stats = store.stats();
    assert_eq!(stats.memo_misses, 1);
    assert_eq!(stats.memo_hits, 3);
    assert_eq!(store.class_of(first), Some(0));
}

/// The durability layer must be invisible to the equivalence contract: a
/// store rebuilt from its snapshot + WAL (here one checkpoint mid-ingest,
/// so recovery exercises both the snapshot load and the replay path)
/// answers the whole oracle suite bit-identically to the live store.
#[test]
fn recovered_store_matches_oracles() {
    let invariants = workload(3);
    let backend = MemoryBackend::new();
    let store = InvariantStore::open(StoreConfig::default(), backend.clone()).expect("open");
    let half = invariants.len() / 2;
    for invariant in &invariants[..half] {
        store.ingest_invariant(invariant.clone());
    }
    store.checkpoint().expect("checkpoint");
    for invariant in &invariants[half..] {
        store.ingest_invariant(invariant.clone());
    }
    let partition = store.classes();
    drop(store);

    let recovered = InvariantStore::open(StoreConfig::default(), backend).expect("recover");
    assert_eq!(recovered.classes(), partition, "recovery changed the class partition");
    assert_eq!(recovered.classes(), isomorphism_classes(&invariants));
    let stats = recovered.stats();
    assert_eq!(stats.instances, invariants.len(), "recovery lost instances");
    assert_eq!(
        stats.replayed_records as usize,
        invariants.len() - half,
        "exactly the post-checkpoint ingests replay from the WAL"
    );
    for query in query_mix() {
        let expected: Vec<bool> =
            invariants.iter().map(|i| evaluate_on_invariant(&query, i)).collect();
        assert_eq!(recovered.query_all(&query), expected, "recovered query_all on {query:?}");
        for (i, &answer) in expected.iter().enumerate() {
            assert_eq!(recovered.query(i, &query), Some(answer), "instance {i} on {query:?}");
        }
    }
}

#[test]
fn store_never_deep_copies_an_invariant() {
    // Pointer-equality pin for the Arc-friendly path: the representative the
    // store hands back IS the ingested allocation, and a deduplicated
    // ingest drops its Arc instead of cloning the invariant.
    let disk = Arc::new(top(&topo_core::SpatialInstance::from_regions([(
        "a",
        topo_core::Region::rectangle(0, 0, 10, 10),
    )])));
    let twin = Arc::new(top(&AffineMap::translation(900, 0).apply_instance(
        &topo_core::SpatialInstance::from_regions([(
            "a",
            topo_core::Region::rectangle(0, 0, 10, 10),
        )]),
    )));
    let store = InvariantStore::default();
    let a = store.ingest_invariant(disk.clone());
    assert_eq!(Arc::strong_count(&disk), 2, "exactly the store's copy, no hidden clones");
    let b = store.ingest_invariant(twin.clone());
    assert_eq!(Arc::strong_count(&twin), 1, "a dedup hit must drop the duplicate Arc");
    let rep = store.class_representative(store.class_of(a).unwrap()).unwrap();
    assert!(Arc::ptr_eq(&rep, &disk), "the class representative is the ingested allocation");
    assert_eq!(store.class_of(a), store.class_of(b));
    drop(rep);

    // The genericised slice oracles accept the Arc slice directly — no
    // `Vec<&T>` rebuild, no clone: the strong counts are untouched.
    let arcs = vec![disk.clone(), twin.clone()];
    let classes = isomorphism_classes(&arcs);
    let answers = evaluate_on_classes(&TopologicalQuery::IsConnected(0), &arcs);
    assert_eq!(classes, vec![vec![0, 1]]);
    assert_eq!(answers, vec![true, true]);
    assert_eq!(Arc::strong_count(&disk), 3, "store + local + `arcs` entry, nothing more");
    assert_eq!(Arc::strong_count(&twin), 2, "local + `arcs` entry, nothing more");
}
