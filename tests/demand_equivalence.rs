//! The goal-directed path (`Program::run_goal`, i.e. the magic-set rewrite
//! feeding the unchanged semi-naive engine) must be bit-for-bit equivalent to
//! bottom-up evaluation plus a goal lookup — on every query-library program
//! over seeded workloads, on bound goals where the rewrite genuinely prunes,
//! and on random template programs under all three semantics. Whenever the
//! rewrite declines (`FallbackReason`), `run_goal` routes through plain
//! `run`, so the property must hold whether the rewrite engages or not —
//! the rewrite is allowed to bail, never to be silently wrong.
//!
//! The frozen naive oracle is the third comparand throughout: the bottom-up
//! answers are cross-checked against `datalog::naive`, and where the rewrite
//! engages, the *rewritten* program is handed to the oracle too, so the
//! rewrite's correctness is established independently of the semi-naive
//! engine it normally runs on.

use proptest::prelude::*;
use topo_core::relational::datalog::magic::{goal_answers, rewrite};
use topo_core::relational::datalog::naive;
use topo_core::relational::{Goal, Literal, Program, Rule, Semantics, Structure, Term};
use topo_core::{
    datalog_program, program_structure, quadratic_connectivity_program, top, TopologicalQuery,
};
use topo_datagen::{figure1, ign_city, nested_rings, scattered_islands, sequoia_hydro, Scale};

fn v(i: u32) -> Term {
    Term::Var(i)
}

fn pos(relation: &str, terms: Vec<Term>) -> Literal {
    Literal::Pos { relation: relation.to_string(), terms }
}

fn neg(relation: &str, terms: Vec<Term>) -> Literal {
    Literal::Neg { relation: relation.to_string(), terms }
}

/// Bottom-up `run` followed by the goal lookup — the reference the
/// goal-directed path must reproduce exactly.
fn goal_via_run(
    program: &Program,
    goal: &Goal,
    input: &Structure,
    mode: Semantics,
    max_steps: usize,
) -> Option<Vec<Vec<u32>>> {
    program.run(input, mode, max_steps).map(|out| goal_answers(&out, &goal.relation, goal))
}

/// The frozen naive oracle followed by the same goal lookup.
fn goal_via_naive(
    program: &Program,
    goal: &Goal,
    input: &Structure,
    mode: Semantics,
    max_steps: usize,
) -> Option<Vec<Vec<u32>>> {
    naive::run(program, input, mode, max_steps).map(|out| goal_answers(&out, &goal.relation, goal))
}

/// Asserts the three paths agree: bottom-up + lookup, `run_goal`, and the
/// naive oracle + lookup.
fn assert_goal_paths_agree(
    program: &Program,
    goal: &Goal,
    input: &Structure,
    modes: &[Semantics],
    max_steps: usize,
    label: &str,
) {
    for &mode in modes {
        let bottom_up = goal_via_run(program, goal, input, mode, max_steps);
        let goal_directed = program.run_goal(goal, input, mode, max_steps);
        assert_eq!(
            bottom_up, goal_directed,
            "run_goal diverged from run + lookup on {label} under {mode:?}"
        );
        let oracle = goal_via_naive(program, goal, input, mode, max_steps);
        assert_eq!(
            bottom_up, oracle,
            "naive oracle diverged from run + lookup on {label} under {mode:?}"
        );
    }
}

fn seeded_instances() -> Vec<(&'static str, topo_core::SpatialInstance)> {
    vec![
        ("figure1", figure1()),
        ("nested_rings", nested_rings(3, 2)),
        ("islands", scattered_islands(4)),
        ("hydro_small", sequoia_hydro(Scale { grid: 2 }, 5)),
        ("city_small", ign_city(Scale { grid: 2 }, 7)),
        (
            "three_rects",
            topo_core::SpatialInstance::from_regions([
                ("P", topo_core::Region::rectangle(0, 0, 100, 100)),
                ("Q", topo_core::Region::rectangle(20, 20, 80, 80)),
                ("R", topo_core::Region::rectangle(100, 0, 200, 100)),
            ]),
        ),
    ]
}

#[test]
fn query_library_run_goal_matches_bottom_up_on_seeded_workloads() {
    let queries = [
        TopologicalQuery::Intersects(0, 1),
        TopologicalQuery::Disjoint(0, 1),
        TopologicalQuery::Contains(0, 1),
        TopologicalQuery::IsConnected(0),
        TopologicalQuery::HasHole(0),
    ];
    for (name, instance) in &seeded_instances() {
        let invariant = top(instance);
        let structure = program_structure(&invariant);
        for query in &queries {
            if matches!(
                query,
                TopologicalQuery::Intersects(_, b)
                    | TopologicalQuery::Disjoint(_, b)
                    | TopologicalQuery::Contains(_, b)
                    if *b >= instance.schema().len()
            ) {
                continue;
            }
            let Some(program) = datalog_program(query, instance.schema()) else {
                continue;
            };
            let goal = program.goal_atom();
            // Every library program must actually take the rewritten path —
            // a library-wide silent fallback would make the goal-directed
            // route a fiction.
            assert!(
                rewrite(&program, &goal, Semantics::Stratified).is_ok(),
                "library program for {query:?} unexpectedly falls back"
            );
            assert_goal_paths_agree(
                &program,
                &goal,
                &structure,
                &[Semantics::Stratified],
                usize::MAX,
                &format!("{query:?} on {name}"),
            );
        }
    }
}

#[test]
fn bound_goals_on_quadratic_reach_agree() {
    // The quadratic program's all-pairs Reach queried with a bound source is
    // where demand pruning is asymptotic; the answers must still match the
    // full bottom-up derivation exactly.
    for (name, instance) in &seeded_instances() {
        let invariant = top(instance);
        let structure = program_structure(&invariant);
        let program = quadratic_connectivity_program(instance.schema(), 0);
        let full = program
            .run(&structure, Semantics::Stratified, usize::MAX)
            .expect("quadratic program converges");
        let all = goal_answers(&full, "Reach", &Goal::all_free("Reach", 2));
        let mut seeds: Vec<u32> = all.iter().map(|t| t[0]).collect();
        seeds.sort_unstable();
        seeds.dedup();
        for &seed in seeds.iter().take(3) {
            let goals = [
                Goal::new("Reach", vec![Term::Const(seed), v(0)]),
                Goal::new("Reach", vec![v(0), Term::Const(seed)]),
                Goal::new("Reach", vec![Term::Const(seed), Term::Const(seed)]),
            ];
            for goal in &goals {
                assert!(
                    rewrite(&program, goal, Semantics::Stratified).is_ok(),
                    "bound Reach goal unexpectedly falls back on {name}"
                );
                assert_goal_paths_agree(
                    &program,
                    goal,
                    &structure,
                    &[Semantics::Stratified],
                    usize::MAX,
                    &format!("Reach goal {goal:?} on {name}"),
                );
            }
        }
        // The diagonal goal (repeated variable) exercises the lookup's
        // consistency filtering on top of a free-free rewrite.
        assert_goal_paths_agree(
            &program,
            &Goal::new("Reach", vec![v(0), v(0)]),
            &structure,
            &[Semantics::Stratified],
            usize::MAX,
            &format!("diagonal Reach goal on {name}"),
        );
    }
}

#[test]
fn disabled_demand_still_matches_bottom_up() {
    // With TOPO_DEMAND=off every run_goal call takes the fallback, which is
    // plain `run` + lookup by construction; equality must be unaffected.
    // (Other tests racing on the flag can only be pushed onto the fallback
    // path, which they must pass anyway.)
    std::env::set_var("TOPO_DEMAND", "off");
    let instance = figure1();
    let invariant = top(&instance);
    let structure = program_structure(&invariant);
    let program = datalog_program(&TopologicalQuery::IsConnected(0), instance.schema())
        .expect("connectivity program available");
    let goal = program.goal_atom();
    assert_goal_paths_agree(
        &program,
        &goal,
        &structure,
        &[Semantics::Stratified],
        usize::MAX,
        "IsConnected with demand disabled",
    );
    std::env::remove_var("TOPO_DEMAND");
}

#[test]
fn out_of_domain_goal_constants_fall_back() {
    // A goal constant outside the input domain cannot be seeded as a magic
    // fact (Structure::insert would panic); run_goal must fall back and
    // return the (empty) bottom-up answer instead.
    let instance = figure1();
    let invariant = top(&instance);
    let structure = program_structure(&invariant);
    let program = quadratic_connectivity_program(instance.schema(), 0);
    let huge = structure.domain_size() as u32 + 10;
    let goal = Goal::new("Reach", vec![Term::Const(huge), v(0)]);
    let answers = program
        .run_goal(&goal, &structure, Semantics::Stratified, usize::MAX)
        .expect("fallback converges");
    assert!(answers.is_empty(), "out-of-domain source cannot reach anything");
    assert_eq!(
        Some(answers),
        goal_via_run(&program, &goal, &structure, Semantics::Stratified, usize::MAX)
    );
}

/// Template-assembled random rule — the same safe templates as
/// `datalog_equivalence.rs`, so the proptests here explore the same program
/// space through the goal-directed lens.
fn template_rule(idx: usize, c: u32, n: u32) -> Rule {
    let k = Term::Const(c % n);
    match idx {
        0 => Rule::new("D1", vec![v(0), v(1)], vec![pos("B1", vec![v(0), v(1)])]),
        1 => Rule::new(
            "D1",
            vec![v(0), v(2)],
            vec![pos("D1", vec![v(0), v(1)]), pos("B1", vec![v(1), v(2)])],
        ),
        2 => Rule::new(
            "D1",
            vec![v(0), v(2)],
            vec![pos("D1", vec![v(0), v(1)]), pos("D1", vec![v(1), v(2)])],
        ),
        3 => Rule::new("D1", vec![v(1), v(0)], vec![pos("B1", vec![v(0), v(1)])]),
        4 => Rule::new("D0", vec![v(0)], vec![pos("B1", vec![v(0), v(1)])]),
        5 => Rule::new("D0", vec![v(1)], vec![pos("D1", vec![v(0), v(1)]), pos("B0", vec![v(0)])]),
        6 => {
            Rule::new("D0", vec![v(1)], vec![pos("D1", vec![v(0), v(1)]), Literal::Neq(v(0), v(1))])
        }
        7 => Rule::new("D0", vec![v(0)], vec![pos("B0", vec![v(0)]), neg("D1", vec![v(0), v(0)])]),
        8 => Rule::new("D0", vec![v(0)], vec![pos("B0", vec![v(0)]), neg("B1", vec![v(0), k])]),
        9 => Rule::new("D1", vec![v(0), k], vec![pos("D1", vec![v(0), v(1)])]),
        10 => Rule::new(
            "Out",
            vec![v(0)],
            vec![
                pos("B0", vec![v(0)]),
                Literal::Count {
                    relation: "D1".into(),
                    terms: vec![v(0), v(1)],
                    counted: vec![1],
                    result: v(2),
                },
                pos("Even", vec![v(2)]),
            ],
        ),
        11 => Rule::new(
            "Out",
            vec![v(0)],
            vec![
                pos("D0", vec![v(0)]),
                Literal::Count {
                    relation: "B1".into(),
                    terms: vec![v(1), v(0)],
                    counted: vec![1],
                    result: Term::Const(c % 3),
                },
            ],
        ),
        12 => Rule::new(
            "Out",
            vec![v(0)],
            vec![pos("D0", vec![v(0)]), pos("D1", vec![v(0), v(1)]), neg("D0", vec![v(1)])],
        ),
        _ => Rule::new("Out", vec![v(0)], vec![pos("D0", vec![v(0)]), Literal::Eq(v(0), k)]),
    }
}

/// Negation / counting through recursion: unstratifiable, so the stratified
/// rewrite must statically reject (or the inflationary gate must fall back),
/// never produce wrong answers.
fn unstratifiable_template_rule(idx: usize, c: u32, n: u32) -> Rule {
    let k = Term::Const(c % n);
    match idx {
        0 => Rule::new(
            "D0",
            vec![v(1)],
            vec![pos("D0", vec![v(0)]), pos("B1", vec![v(0), v(1)]), neg("D0", vec![v(1)])],
        ),
        1 => Rule::new(
            "D1",
            vec![v(0), v(1)],
            vec![
                pos("D1", vec![v(0), v(1)]),
                Literal::Count {
                    relation: "D1".into(),
                    terms: vec![v(0), v(2)],
                    counted: vec![2],
                    result: v(3),
                },
                pos("NumLess", vec![v(3), k]),
            ],
        ),
        2 => Rule::new(
            "D1",
            vec![v(1), v(2)],
            vec![
                pos("D1", vec![v(0), v(1)]),
                pos("B1", vec![v(1), v(2)]),
                Literal::Count {
                    relation: "D0".into(),
                    terms: vec![v(3)],
                    counted: vec![3],
                    result: v(4),
                },
                pos("Even", vec![v(4)]),
            ],
        ),
        _ => Rule::new("D0", vec![k], vec![pos("B0", vec![k])]),
    }
}

/// Random goals over the template programs' relations: bound, free, repeated
/// and constant positions over `Out`/`D0`/`D1`.
fn template_goal(idx: usize, c: u32, n: u32) -> Goal {
    let k = Term::Const(c % n);
    match idx {
        0 => Goal::new("Out", vec![v(0)]),
        1 => Goal::new("Out", vec![k]),
        2 => Goal::new("D1", vec![k, v(0)]),
        3 => Goal::new("D1", vec![v(0), k]),
        4 => Goal::new("D1", vec![v(0), v(1)]),
        5 => Goal::new("D1", vec![v(0), v(0)]),
        6 => Goal::new("D0", vec![k]),
        _ => Goal::new("D0", vec![v(0)]),
    }
}

/// A random input structure with binary `B1`, unary `B0`, and the numeric
/// scaffolding counting programs need.
fn random_structure() -> impl Strategy<Value = Structure> {
    let edges = proptest::collection::vec((0u32..16, 0u32..16), 0..14);
    let marks = proptest::collection::vec(0u32..16, 0..6);
    (4usize..8, edges, marks).prop_map(|(n, edges, marks)| {
        let mut s = Structure::new(n);
        s.add_numeric_relations();
        s.add_relation("B0", 1);
        s.add_relation("B1", 2);
        for (a, b) in edges {
            s.insert("B1", &[a % n as u32, b % n as u32]);
        }
        for m in marks {
            s.insert("B0", &[m % n as u32]);
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random stratifiable programs with random goals: `run_goal` must equal
    /// bottom-up + lookup under every semantics, and wherever the rewrite
    /// engages, the rewritten program must preserve the answers under the
    /// frozen naive oracle too.
    #[test]
    fn random_stratifiable_goals_agree(
        input in random_structure(),
        picks in proptest::collection::vec((0usize..14, 0u32..8), 1..7),
        goal_pick in (0usize..8, 0u32..8),
    ) {
        let n = input.domain_size() as u32;
        let mut program = Program::new("Out");
        for (idx, c) in picks {
            program.rules.push(template_rule(idx, c, n));
        }
        let goal = template_goal(goal_pick.0, goal_pick.1, n);
        // Terminating semantics get an unbounded step budget (the rewritten
        // program may need a different number of rounds than the original);
        // partial fixpoint keeps a finite budget and always takes the
        // fallback, so the budget semantics stay aligned.
        for (mode, max_steps) in [
            (Semantics::Inflationary, usize::MAX),
            (Semantics::Stratified, usize::MAX),
            (Semantics::Partial, 40),
        ] {
            let bottom_up = goal_via_run(&program, &goal, &input, mode, max_steps);
            let goal_directed = program.run_goal(&goal, &input, mode, max_steps);
            prop_assert_eq!(
                &bottom_up, &goal_directed,
                "run_goal diverged under {:?} on {:?} with goal {:?}", mode, program, goal
            );
            if let Ok(magic) = rewrite(&program, &goal, mode) {
                let oracle = naive::run(&magic.program, &input, mode, max_steps)
                    .map(|out| goal_answers(&out, &magic.goal_relation, &goal));
                prop_assert_eq!(
                    &bottom_up, &oracle,
                    "rewritten program diverged from the oracle under {:?} on {:?} with goal {:?}",
                    mode, program, goal
                );
            }
        }
    }

    /// Random programs with negation and counting through recursion: the
    /// rewrite must statically reject into the fallback or preserve answers —
    /// under no circumstances may `run_goal` differ from bottom-up + lookup.
    #[test]
    fn random_unstratifiable_goals_agree(
        input in random_structure(),
        seeds in proptest::collection::vec((0usize..14, 0u32..8), 1..5),
        recursive in proptest::collection::vec((0usize..4, 0u32..8), 1..4),
        goal_pick in (0usize..8, 0u32..8),
    ) {
        let n = input.domain_size() as u32;
        let mut program = Program::new("Out");
        for (idx, c) in seeds {
            program.rules.push(template_rule(idx, c, n));
        }
        for (idx, c) in recursive {
            program.rules.push(unstratifiable_template_rule(idx, c, n));
        }
        let goal = template_goal(goal_pick.0, goal_pick.1, n);
        // Stratified is exercised only when the program happens to be
        // stratifiable (plain `run` panics otherwise, and `run_goal`'s
        // fallback must reproduce exactly that, which the gate test below
        // covers separately).
        let mut modes = vec![(Semantics::Inflationary, usize::MAX), (Semantics::Partial, 40)];
        if program.is_stratifiable() {
            modes.push((Semantics::Stratified, usize::MAX));
        }
        for (mode, max_steps) in modes {
            let bottom_up = goal_via_run(&program, &goal, &input, mode, max_steps);
            let goal_directed = program.run_goal(&goal, &input, mode, max_steps);
            prop_assert_eq!(
                &bottom_up, &goal_directed,
                "run_goal diverged under {:?} on {:?} with goal {:?}", mode, program, goal
            );
            if let Ok(magic) = rewrite(&program, &goal, mode) {
                let oracle = naive::run(&magic.program, &input, mode, max_steps)
                    .map(|out| goal_answers(&out, &magic.goal_relation, &goal));
                prop_assert_eq!(
                    &bottom_up, &oracle,
                    "rewritten program diverged from the oracle under {:?} on {:?} with goal {:?}",
                    mode, program, goal
                );
            }
        }
    }
}
