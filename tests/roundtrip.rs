//! Theorem 2.1 / 2.2 round trips: homeomorphic instances have isomorphic
//! invariants, and inversion rebuilds topologically equivalent instances.

use topo_core::spatial::transform::AffineMap;
use topo_core::Rational;

#[test]
fn homeomorphic_instances_have_isomorphic_invariants() {
    for (name, instance) in [
        ("hydro", topo_datagen::sequoia_hydro(topo_datagen::Scale::tiny(), 3)),
        ("landcover", topo_datagen::sequoia_landcover(topo_datagen::Scale::tiny(), 3)),
        ("figure1", topo_datagen::figure1()),
        ("city", topo_datagen::ign_city(topo_datagen::Scale::tiny(), 3)),
    ] {
        let invariant = topo_core::top(&instance);
        for map in [
            AffineMap::translation(12345, -9876),
            AffineMap::rotation90(),
            AffineMap::reflection_x(),
            AffineMap::scaling(Rational::new(5, 3)),
            AffineMap::shear_x(Rational::new(1, 4)),
        ] {
            let transformed = topo_core::top(&map.apply_instance(&instance));
            assert!(
                transformed.is_isomorphic_to(&invariant),
                "{name}: invariant changed under {map:?}"
            );
        }
    }
}

#[test]
fn inversion_roundtrip_on_invertible_workloads() {
    for (name, instance) in [
        ("hydro", topo_datagen::sequoia_hydro(topo_datagen::Scale::tiny(), 8)),
        ("nested rings", topo_datagen::nested_rings(4, 2)),
        ("islands", topo_datagen::scattered_islands(7)),
    ] {
        let invariant = topo_core::top(&instance);
        let rebuilt = topo_core::invert_verified(&invariant)
            .unwrap_or_else(|e| panic!("{name}: inversion failed: {e}"));
        let rebuilt_invariant = topo_core::top(&rebuilt);
        assert!(
            rebuilt_invariant.is_isomorphic_to(&invariant),
            "{name}: round trip broke topology"
        );
        // The rebuilt instance is usually far smaller than the original.
        assert!(rebuilt.point_count() <= instance.point_count().max(64));
    }
}

#[test]
fn different_topologies_are_distinguished() {
    let one = topo_core::top(&topo_datagen::scattered_islands(3));
    let other = topo_core::top(&topo_datagen::scattered_islands(4));
    assert!(!one.is_isomorphic_to(&other));
    let nested = topo_core::top(&topo_datagen::nested_rings(3, 1));
    let flat = topo_core::top(&topo_datagen::scattered_islands(3));
    assert!(!nested.is_isomorphic_to(&flat));
}
