//! The parallel `top(I)` pipeline must be **bit-identical** to the
//! sequential one: same cell counts, same canonical code, same `CodeHash`,
//! at every pool size — 1 (the guaranteed-sequential fallback), small,
//! large, and oversubscribed — and the batched store ingest must be
//! observationally equivalent to a sequential ingest loop.
//!
//! The pool size is process-global (`topo_parallel::set_global_threads`), so
//! every test that sweeps it serialises on one lock; the sweep itself is the
//! point, not an artefact. The frozen `naive-reference` pipeline
//! (`top_naive`) anchors the whole family: parallel output equals sequential
//! output equals the pre-optimisation oracle.

use std::sync::Arc;
use topo_core::parallel::set_global_threads;
use topo_core::{
    top, top_naive, IngestOutcome, InvariantStore, MemoryBackend, SpatialInstance, StoreConfig,
};

mod common;
use common::{batch_query_mix as query_mix, fingerprint, seeded_workloads as workloads, PoolGuard};

/// The thread counts every sweep runs: sequential fallback, a small pool, the
/// acceptance-criteria pool, and heavy oversubscription of any host.
const SWEEP: [usize; 4] = [1, 2, 8, 64];

#[test]
fn seeded_workloads_bit_identical_across_thread_counts() {
    let _guard = PoolGuard::take();
    for (label, instance) in workloads() {
        set_global_threads(1);
        let sequential = fingerprint(&instance);
        for threads in SWEEP {
            set_global_threads(threads);
            assert_eq!(
                fingerprint(&instance),
                sequential,
                "parallel build diverged from sequential on {label} at {threads} threads"
            );
        }
    }
}

#[test]
fn parallel_build_matches_frozen_naive_reference() {
    let _guard = PoolGuard::take();
    set_global_threads(8);
    for (label, instance) in workloads() {
        let parallel = top(&instance);
        let oracle = top_naive(&instance);
        assert_eq!(
            parallel.canonical_code(),
            oracle.canonical_code(),
            "parallel canonical code diverged from the naive reference on {label}"
        );
        assert_eq!(parallel.cell_count(), oracle.cell_count(), "cell count diverged on {label}");
    }
}

/// A batch with guaranteed duplicates, so the dedup path is exercised.
fn batch_instances() -> Vec<SpatialInstance> {
    let mut batch = workloads().into_iter().map(|(_, i)| i).collect::<Vec<_>>();
    let dupes = workloads().into_iter().map(|(_, i)| i).collect::<Vec<_>>();
    batch.extend(dupes);
    batch
}

#[test]
fn ingest_batch_equivalent_to_sequential_ingest_loop() {
    let _guard = PoolGuard::take();
    set_global_threads(8);
    let batch = batch_instances();

    let sequential = InvariantStore::default();
    let loop_outcomes: Vec<IngestOutcome> =
        batch.iter().map(|i| sequential.try_ingest(i)).collect();
    let batched = InvariantStore::default();
    let batch_outcomes = batched.try_ingest_batch(&batch);

    assert_eq!(batch_outcomes, loop_outcomes, "outcomes diverged from the sequential loop");
    assert_eq!(batched.classes(), sequential.classes(), "class partitions diverged");
    assert_eq!(batched.instance_count(), sequential.instance_count());
    assert_eq!(batched.class_count(), sequential.class_count());
    for query in query_mix() {
        for id in 0..batch.len() {
            assert_eq!(
                batched.query(id, &query),
                sequential.query(id, &query),
                "answer diverged on instance {id} for {query:?}"
            );
        }
    }
}

#[test]
fn ingest_batch_respects_the_admission_bound_like_the_loop() {
    let _guard = PoolGuard::take();
    set_global_threads(8);
    let batch = batch_instances();
    let config = StoreConfig { max_classes: 3, ..StoreConfig::default() };

    let sequential = InvariantStore::new(config);
    let loop_outcomes: Vec<IngestOutcome> =
        batch.iter().map(|i| sequential.try_ingest(i)).collect();
    let batched = InvariantStore::new(config);
    let batch_outcomes = batched.try_ingest_batch(&batch);

    assert!(loop_outcomes.iter().any(|o| o.is_rejected()), "bound too loose to test rejection");
    assert_eq!(batch_outcomes, loop_outcomes, "admission decisions diverged");
    assert_eq!(batched.classes(), sequential.classes());
    assert_eq!(batched.stats().rejected, sequential.stats().rejected);
}

#[test]
fn batched_wal_recovers_like_per_record_appends() {
    let _guard = PoolGuard::take();
    set_global_threads(8);
    let batch = batch_instances();

    let per_record = MemoryBackend::new();
    {
        let store = InvariantStore::open(StoreConfig::default(), per_record.clone()).unwrap();
        for instance in &batch {
            store.ingest(instance);
        }
    }
    let grouped = MemoryBackend::new();
    let grouped_outcomes = {
        let store = InvariantStore::open(StoreConfig::default(), grouped.clone()).unwrap();
        store.ingest_batch(&batch)
    };
    assert_eq!(grouped_outcomes, (0..batch.len()).collect::<Vec<_>>());

    let a = InvariantStore::open(StoreConfig::default(), per_record).unwrap();
    let b = InvariantStore::open(StoreConfig::default(), grouped).unwrap();
    assert_eq!(a.classes(), b.classes(), "recovered partitions diverged");
    assert_eq!(a.instance_count(), b.instance_count());
    for query in query_mix() {
        for id in 0..batch.len() {
            assert_eq!(a.query(id, &query), b.query(id, &query));
        }
    }
}

#[test]
fn invariant_batch_ingest_reuses_the_given_arcs() {
    let _guard = PoolGuard::take();
    set_global_threads(2);
    let invariants: Vec<Arc<_>> = workloads().iter().map(|(_, i)| Arc::new(top(i))).collect();
    let store = InvariantStore::default();
    let outcomes = store.try_ingest_invariant_batch(&invariants);
    assert_eq!(outcomes.len(), invariants.len());
    for (outcome, invariant) in outcomes.iter().zip(&invariants) {
        let id = outcome.id().expect("unbounded store admits everything");
        let class = store.class_of(id).unwrap();
        if matches!(outcome, IngestOutcome::Admitted(_)) {
            let rep = store.class_representative(class).unwrap();
            assert!(
                Arc::ptr_eq(&rep, invariant),
                "an admitted class must keep the caller's Arc, not a copy"
            );
        }
    }
}
