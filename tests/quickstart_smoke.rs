//! Pins the numbers quoted by the `topo_core` doctest, the README quickstart
//! and `examples/quickstart.rs`, so the documented output can never silently
//! drift from what the code computes.

use topo_core::{Region, SpatialInstance, TopologicalQuery};

/// The nested-rectangles instance used verbatim in the `topo-core` crate
/// docs and the README.
fn quickstart_instance() -> SpatialInstance {
    SpatialInstance::from_regions([
        ("park", Region::rectangle(0, 0, 100, 100)),
        ("lake", Region::rectangle(30, 30, 70, 70)),
    ])
}

#[test]
fn quickstart_invariant_has_five_cells() {
    let invariant = topo_core::top(&quickstart_instance());
    // Two nested rectangles decompose the plane into 2 ring edges and
    // 3 faces (exterior, park ring interior, lake interior): 5 cells.
    assert_eq!(invariant.cell_count(), 5);
}

#[test]
fn quickstart_queries_agree_on_both_sides() {
    let instance = quickstart_instance();
    let invariant = topo_core::top(&instance);
    let query = TopologicalQuery::Contains(0, 1);
    assert!(topo_core::evaluate_on_invariant(&query, &invariant));
    assert!(topo_core::evaluate_direct(&query, &instance));
}
